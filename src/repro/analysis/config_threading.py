"""CFG001: every ``RunConfig`` field must actually be threaded through.

The recurring bug class of PRs 2-6: a new knob lands on ``RunConfig``, the
scenario JSON accepts it, the CLI sweeps it — and nothing downstream ever
reads it, so every sweep cell silently runs the default.  Dynamically this
is invisible (no test fails; the axis just produces flat lines).

Statically it is crisp: a threaded field is *consumed* — its name appears
as an attribute read (``config.<field>`` / ``self.<field>``) somewhere in
``src/repro`` outside the field's own declaration and outside
``__post_init__`` (validation alone is not threading).  A field nobody
reads is a lint error.  Reads inside the config class's other methods
count: helpers like ``channel_spec()`` are the threading for their fields.

The rule also pins the structural plumbing that makes ``run.*`` overrides
and JSON round-tripping automatic for every field:

* the dotted-override function must validate ``run.*`` paths against
  ``fields(RunConfig)`` (so new fields are sweepable with zero edits), and
* ``ScenarioSpec.to_dict``/``from_dict`` must carry the ``"run"`` section
  (so new fields round-trip through JSON with zero edits).

Tested live by injecting a fake field into a copy of the tree and
asserting the analyzer rejects it (``tests/analysis/test_config_threading``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.callgraph import get_callgraph, walk_unit
from repro.analysis.framework import (
    AnalysisConfig,
    Finding,
    Project,
    Rule,
    register,
)


def _dataclass_fields(cls: ast.ClassDef) -> dict[str, int]:
    """Field name -> line for every dataclass field declared on ``cls``."""
    fields: dict[str, int] = {}
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = ast.unparse(node.annotation)
            if annotation.startswith(("ClassVar", "typing.ClassVar")):
                continue
            fields[node.target.id] = node.lineno
    return fields


@register
class ConfigThreading(Rule):
    """CFG001: un-consumed config fields and broken override plumbing."""

    name = "CFG001"
    description = ("every RunConfig field must be consumed in src/repro and "
                   "ride the ScenarioSpec run/override plumbing")

    def check(self, project: Project, config: AnalysisConfig) -> Iterable[Finding]:
        config_path, class_name = config.config_class
        source = project.get(config_path)
        if source is None or source.tree is None:
            return
        config_cls: ast.ClassDef | None = None
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                config_cls = node
                break
        if config_cls is None:
            yield Finding(self.name, source.relative, 1,
                          f"config class `{class_name}` not found")
            return
        fields = _dataclass_fields(config_cls)
        if not fields:
            yield Finding(self.name, source.relative, config_cls.lineno,
                          f"`{class_name}` declares no dataclass fields — "
                          "is it still the experiment config?")
            return
        consumed = self._consumed_attributes(project, config, source.relative,
                                             config_cls)
        for field_name, line in sorted(fields.items(), key=lambda kv: kv[1]):
            if field_name not in consumed:
                yield Finding(
                    self.name, source.relative, line,
                    f"`{class_name}.{field_name}` is never read anywhere in "
                    f"{config.src_prefix}: the knob is declared (and "
                    "sweepable) but not threaded into any behaviour",
                )
        yield from self._check_spec_plumbing(project, config, class_name)

    # -- consumption ------------------------------------------------------- #

    def _consumed_attributes(self, project: Project, config: AnalysisConfig,
                             config_relative: str,
                             config_cls: ast.ClassDef) -> set[str]:
        """Attribute names read (Load context) anywhere in the source tree,

        excluding the config class's own field declarations and its
        ``__post_init__`` (validating a field is not consuming it).
        """
        excluded_lines: set[int] = set()
        for node in config_cls.body:
            if isinstance(node, ast.AnnAssign):
                excluded_lines.update(range(node.lineno, node.end_lineno + 1))
            elif isinstance(node, ast.FunctionDef) and node.name == "__post_init__":
                excluded_lines.update(range(node.lineno, node.end_lineno + 1))
        consumed: set[str] = set()
        for other in project.under(config.src_prefix):
            if other.tree is None:
                continue
            in_config_module = other.relative == config_relative
            for node in ast.walk(other.tree):
                if isinstance(node, ast.Attribute) \
                        and isinstance(node.ctx, ast.Load):
                    if in_config_module and node.lineno in excluded_lines:
                        continue
                    consumed.add(node.attr)
        return consumed

    # -- spec plumbing ----------------------------------------------------- #

    def _check_spec_plumbing(self, project: Project, config: AnalysisConfig,
                             class_name: str) -> Iterator[Finding]:
        spec = project.get(config.spec_module)
        if spec is None or spec.tree is None:
            return  # fixture trees without a spec module skip this half
        validates_fields = False
        for node in ast.walk(spec.tree):
            if isinstance(node, ast.Call) \
                    and getattr(node.func, "id", None) == "fields" \
                    and any(getattr(arg, "id", None) == class_name
                            for arg in node.args):
                validates_fields = True
                break
        if not validates_fields:
            yield Finding(
                self.name, spec.relative, 1,
                f"the scenario spec no longer validates overrides against "
                f"`fields({class_name})` — new config fields would lose "
                "their dotted `run.*` path",
            )
        for method_name in ("to_dict", "from_dict"):
            if not self._method_mentions_run(spec.tree, method_name):
                yield Finding(
                    self.name, spec.relative, 1,
                    f"ScenarioSpec.{method_name} no longer carries the "
                    "\"run\" section — config fields would stop "
                    "round-tripping through JSON",
                )

    @staticmethod
    def _method_mentions_run(tree: ast.Module, method_name: str) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == "ScenarioSpec":
                for item in node.body:
                    if isinstance(item, ast.FunctionDef) \
                            and item.name == method_name:
                        for sub in ast.walk(item):
                            if isinstance(sub, ast.Constant) \
                                    and sub.value == "run":
                                return True
        return False


@register
class InterproceduralConfigThreading(Rule):
    """CFG101: config fields must be read by code that actually *runs*.

    CFG001 accepts any attribute read of a field name anywhere in the
    tree — which is exactly how the PR 5 node-0 position bug survived
    review: the field *was* read, but only by a helper whose last call
    site had been dropped in a refactor, so every run silently used the
    default.  CFG101 closes that hole with the call graph: a field counts
    as threaded only when some read of it sits in code reachable from the
    configured entry modules (:attr:`AnalysisConfig.entry_modules` — the
    CLI and the figure harnesses), where "reachable" follows calls,
    by-name callback references, imports, and class instantiation, and
    seeds every decorated/public definition of a reachable module so
    registration-style indirection never causes a false alarm.
    """

    name = "CFG101"
    description = ("every RunConfig field must be read by code reachable "
                   "from the CLI/figure entry points through the call "
                   "graph, not merely read somewhere (dead helpers do not "
                   "thread a knob)")

    def check(self, project: Project, config: AnalysisConfig) -> Iterable[Finding]:
        config_path, class_name = config.config_class
        source = project.get(config_path)
        if source is None or source.tree is None:
            return
        config_cls: ast.ClassDef | None = None
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                config_cls = node
                break
        if config_cls is None:
            return  # CFG001 already reports the missing class
        fields = _dataclass_fields(config_cls)
        if not fields:
            return
        graph = get_callgraph(project, config)
        reachable = graph.reachable_from(config.entry_modules)
        if not any(module in reachable for module in config.entry_modules):
            return  # fixture trees without the entry modules skip this rule
        live = self._reachable_reads(graph, reachable, config_path, config_cls)
        for field_name, line in sorted(fields.items(), key=lambda kv: kv[1]):
            if field_name not in live:
                yield Finding(
                    self.name, source.relative, line,
                    f"`{class_name}.{field_name}` is never read by code "
                    "reachable from the entry points "
                    f"({', '.join(config.entry_modules)}): the only "
                    "consumers are dead code, so the knob cannot influence "
                    "a run",
                )

    def _reachable_reads(self, graph, reachable: set[str],
                         config_relative: str,
                         config_cls: ast.ClassDef) -> set[str]:
        """Attribute names read (Load) inside reachable code units."""
        excluded_lines: set[int] = set()
        for node in config_cls.body:
            if isinstance(node, ast.AnnAssign):
                excluded_lines.update(range(node.lineno, node.end_lineno + 1))
            elif isinstance(node, ast.FunctionDef) and node.name == "__post_init__":
                excluded_lines.update(range(node.lineno, node.end_lineno + 1))
        live: set[str] = set()

        def collect(roots, relative: str) -> None:
            for sub in walk_unit(roots):
                if isinstance(sub, ast.Attribute) \
                        and isinstance(sub.ctx, ast.Load):
                    if relative == config_relative \
                            and sub.lineno in excluded_lines:
                        continue
                    live.add(sub.attr)

        for unit in reachable:
            info = graph.functions.get(unit)
            if info is not None:
                collect(info.node.body, info.source.relative)
                continue
            module_source = graph.modules.get(unit)
            if module_source is not None and module_source.tree is not None:
                collect(module_source.tree.body, module_source.relative)
        return live
