"""The rule framework behind ``repro-check``.

Three pieces, deliberately small:

* :class:`Project` — the parsed source tree.  Every ``*.py`` file under the
  configured targets is loaded once into a :class:`SourceFile` (text,
  lines, lazily-parsed AST, per-line suppressions), so every rule works
  from the same snapshot and no rule re-reads the disk.
* :class:`Rule` — one named invariant.  A rule sees the whole project (the
  interesting invariants are cross-file) and yields :class:`Finding`
  objects; the framework filters findings through ``# repro: allow-<RULE>``
  suppression comments and sorts them for stable output.
* the registry — rules self-register at import time via :func:`register`,
  so the CLI, ``make lint``'s fallback and the tests all address rules by
  name through one table.

Per-rule knobs (which modules are hot, which classes form an engine pair,
where the config dataclass lives) are fields of :class:`AnalysisConfig`
rather than hard-coded in the rules, which is what lets the fixture tests
point a rule at a known-bad synthetic tree.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator

#: A suppression directive: a *comment* whose text begins with
#: ``repro: allow-RULE`` (optionally followed by a reason).  It suppresses
#: matching findings on its line, or on the next code line when the comment
#: stands alone; an extra ``file`` token right after the rule name widens
#: the scope to the whole module.  Only real comment tokens count — the
#: same text inside a string or docstring merely *mentions* the syntax.
_SUPPRESS = re.compile(r"#\s*repro:\s*allow-([A-Za-z0-9]+)(\s+file\b)?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, posix separators
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


class SourceFile:
    """One parsed source file plus its suppression map."""

    def __init__(self, root: Path, path: Path) -> None:
        self.path = path
        self.relative = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self._tree: ast.Module | None = None
        self._syntax_error: SyntaxError | None = None
        self._suppressions: dict[int, set[str]] | None = None
        #: (rule, covered code line) -> comment lines granting the cover
        self._line_cover: dict[tuple[str, int], set[int]] = {}
        #: rule -> comment lines granting module-wide cover
        self._file_cover: dict[str, set[int]] = {}
        #: every ``allow-RULE`` occurrence: (comment line, rule, file scope)
        self._sites: list[tuple[int, str, bool]] = []

    @property
    def tree(self) -> ast.Module | None:
        """The parsed AST, or ``None`` when the file has a syntax error."""
        if self._tree is None and self._syntax_error is None:
            try:
                self._tree = ast.parse(self.text, filename=str(self.path))
            except SyntaxError as error:
                self._syntax_error = error
        return self._tree

    @property
    def syntax_error(self) -> SyntaxError | None:
        self.tree  # noqa: B018 - force the parse attempt
        return self._syntax_error

    def _comment_tokens(self) -> list[tuple[int, str]]:
        """(line, text) for every real comment token in the file.

        Tokenizing (rather than regex-scanning raw lines) is what keeps a
        docstring or string literal that *mentions* the suppression syntax
        from acting as — or being audited as — a suppression.  Files the
        tokenizer rejects fall back to a crude first-``#`` line scan so
        suppressions still work alongside their SYN001 finding.
        """
        try:
            return [(token.start[0], token.string)
                    for token in tokenize.generate_tokens(
                        io.StringIO(self.text).readline)
                    if token.type == tokenize.COMMENT]
        except (tokenize.TokenError, IndentationError, SyntaxError,
                ValueError):
            return [(number, line[line.index("#"):])
                    for number, line in enumerate(self.lines, start=1)
                    if "#" in line]

    def suppressions(self) -> dict[int, set[str]]:
        """Map line number -> rule names suppressed on that line.

        A trailing ``# repro: allow-RULE`` comment covers its own line; a
        comment-only line covers the next non-blank, non-comment line too,
        so long suppression reasons need not fight the line-length rule.
        ``# repro: allow-RULE file`` covers the whole module (reported
        here under the comment's own line; :meth:`is_suppressed` applies
        it everywhere).  The directive must open its comment: trailing
        prose, doc references and quoted examples never suppress.
        """
        if self._suppressions is None:
            directives: dict[int, list[tuple[str, str]]] = {}
            for number, comment in self._comment_tokens():
                if _SUPPRESS.match(comment):
                    directives.setdefault(number, []).extend(
                        _SUPPRESS.findall(comment))
            table: dict[int, set[str]] = {}
            # (rule, site line) pairs waiting for the next code line.
            pending: set[tuple[str, int]] = set()
            for number, line in enumerate(self.lines, start=1):
                sited: set[tuple[str, int]] = set()
                for rule_name, file_token in directives.get(number, ()):
                    rule_name = rule_name.upper()
                    file_scope = bool(file_token)
                    self._sites.append((number, rule_name, file_scope))
                    if file_scope:
                        self._file_cover.setdefault(rule_name, set()).add(number)
                    else:
                        sited.add((rule_name, number))
                stripped = line.strip()
                if sited:
                    for rule_name, site in sited:
                        table.setdefault(number, set()).add(rule_name)
                        self._line_cover.setdefault(
                            (rule_name, number), set()).add(site)
                    if stripped.startswith("#"):
                        pending |= sited  # standalone comment: next code line
                        continue
                if not stripped or stripped.startswith("#"):
                    continue
                if pending:
                    for rule_name, site in pending:
                        table.setdefault(number, set()).add(rule_name)
                        self._line_cover.setdefault(
                            (rule_name, number), set()).add(site)
                    pending = set()
            self._suppressions = table
        return self._suppressions

    def is_suppressed(self, rule: str, line: int) -> bool:
        self.suppressions()
        return rule in self.suppressions().get(line, ()) \
            or rule in self._file_cover

    def suppression_sites(self) -> list[tuple[int, str, bool]]:
        """Every ``allow-RULE`` occurrence: (line, rule, file scope)."""
        self.suppressions()
        return list(self._sites)

    def covering_sites(self, rule: str, line: int) -> set[int]:
        """Comment lines whose suppression covers (rule, line)."""
        self.suppressions()
        return self._line_cover.get((rule, line), set()) \
            | self._file_cover.get(rule, set())


class Project:
    """The analyzed source tree: every python file under the targets."""

    def __init__(self, root: Path, targets: Iterable[str]) -> None:
        self.root = Path(root)
        self.files: list[SourceFile] = []
        self._by_relative: dict[str, SourceFile] = {}
        for target in targets:
            path = self.root / target
            if path.is_file():
                self._add(path)
            elif path.is_dir():
                for candidate in sorted(path.rglob("*.py")):
                    self._add(candidate)

    def _add(self, path: Path) -> None:
        source = SourceFile(self.root, path)
        if source.relative not in self._by_relative:
            self._by_relative[source.relative] = source
            self.files.append(source)

    def get(self, relative: str) -> SourceFile | None:
        """Look up one file by repo-relative posix path."""
        return self._by_relative.get(relative)

    def under(self, prefix: str) -> Iterator[SourceFile]:
        """All files whose repo-relative path starts with ``prefix``."""
        prefix = prefix.rstrip("/") + "/"
        for source in self.files:
            if source.relative.startswith(prefix) or source.relative == prefix[:-1]:
                yield source


@dataclass
class AnalysisConfig:
    """Per-rule registries and knobs; defaults describe *this* repository."""

    #: Directories/files the style rules cover (the old lint.py targets).
    style_targets: tuple[str, ...] = ("src", "tests", "benchmarks", "scripts",
                                      "examples", "setup.py")
    #: Maximum source line length (mirrors ``tool.ruff.line-length``).
    line_length: int = 100
    #: The package subtree the determinism/invariant rules police.
    src_prefix: str = "src/repro"
    #: Import root: dotted module names derive from paths under here
    #: (``src/repro/sim/events.py`` -> ``repro.sim.events``).
    src_root: str = "src"
    #: Wall-clock callables DET001 rejects inside :attr:`src_prefix`.
    wallclock_calls: tuple[str, ...] = (
        "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns", "time.process_time",
        "time.process_time_ns", "datetime.datetime.now", "datetime.datetime.today",
        "datetime.datetime.utcnow", "datetime.date.today",
    )
    #: Modules whose realisation classes must stay counter-based (DET002).
    purity_modules: tuple[str, ...] = (
        "src/repro/sim/channels.py",
        "src/repro/topology/mobility.py",
    )
    #: Fault-process modules held to the same counter-based purity (DET003):
    #: a fault realisation must be a pure function of (seed, node, counter)
    #: so crash schedules are identical across serial/parallel execution.
    fault_modules: tuple[str, ...] = (
        "src/repro/sim/faults.py",
    )
    #: (path, reference class, path, variant class) engine pairs: every
    #: public method/property of the reference must exist on the variant
    #: with a matching signature (extra trailing defaulted params allowed).
    parity_class_pairs: tuple[tuple[str, str, str, str], ...] = (
        ("src/repro/sim/events.py", "LegacyEventQueue",
         "src/repro/sim/events.py", "EventQueue"),
    )
    #: (path, registry dict name, extra function names): every function in
    #: the dict literal plus the extras must share one parameter list.
    parity_function_families: tuple[tuple[str, str, tuple[str, ...]], ...] = (
        ("src/repro/gf/kernels.py", "VECMAT_KERNELS", ("gf_vecmat_reference",)),
    )
    #: Classes whose ``__init__`` must agree on the named selector keywords
    #: (names *and* defaults): the engine/kernel selector surface.
    parity_selector_classes: tuple[tuple[tuple[str, str], ...], ...] = (
        (("src/repro/coding/buffer.py", "BatchBuffer"),
         ("src/repro/coding/decoder.py", "BatchDecoder")),
    )
    #: Keywords the selector classes above must agree on.
    parity_selector_keywords: tuple[str, ...] = ("fast", "engine", "kernel")
    #: Where the experiment config dataclass lives (CFG001).
    config_class: tuple[str, str] = ("src/repro/experiments/runner.py", "RunConfig")
    #: The scenario-spec module whose run/override plumbing CFG001 checks.
    spec_module: str = "src/repro/scenarios/spec.py"
    #: Where the content-addressed store's config fingerprint lives (CACHE001).
    cache_store_module: str = "src/repro/experiments/orchestrator/store.py"
    #: The function that must feed every config field into the spec hash.
    cache_hash_function: str = "config_fingerprint"
    #: Hot modules PERF001 polices for lambdas / ``print``.
    hot_modules: tuple[str, ...] = (
        "src/repro/sim/events.py",
        "src/repro/sim/mac.py",
        "src/repro/sim/medium.py",
        "src/repro/gf/kernels.py",
        "src/repro/protocols/more/agent.py",
    )
    #: The attribute holding the main simulation Generator — DET101's MAIN
    #: stream root (path, class, attribute).
    rng_main_root: tuple[str, str, str] = (
        "src/repro/sim/simulator.py", "Simulator", "rng")
    #: Generator methods DET101 treats as draw sites.
    rng_draw_methods: tuple[str, ...] = (
        "random", "integers", "normal", "uniform", "choice", "shuffle",
        "permutation", "exponential", "standard_normal", "bytes")
    #: Classes whose handle-returning ``schedule*()`` calls EVT101 polices
    #: (the queue pair plus the :class:`Simulator` facade).
    event_queue_classes: tuple[tuple[str, str], ...] = (
        ("src/repro/sim/events.py", "EventQueue"),
        ("src/repro/sim/events.py", "LegacyEventQueue"),
        ("src/repro/sim/simulator.py", "Simulator"),
    )
    #: The handle-returning schedule methods (the ``schedule_callback*``
    #: fire-and-forget variants are the sanctioned discard path).
    schedule_methods: tuple[str, ...] = ("schedule", "schedule_at")
    #: Modules whose public surface seeds CFG101's reachability walk.
    entry_modules: tuple[str, ...] = ("repro.cli", "repro.experiments.figures")
    #: path -> class names that must keep ``__slots__`` (literal assignment
    #: or ``@dataclass(slots=True)``).
    slots_classes: dict[str, tuple[str, ...]] = field(default_factory=lambda: {
        "src/repro/sim/events.py": ("EventHandle", "LegacyEventHandle"),
        "src/repro/sim/medium.py": ("Transmission",),
        "src/repro/sim/frames.py": ("Frame",),
        "src/repro/protocols/more/agent.py": ("MoreDataPayload", "MoreAckPayload"),
        "src/repro/protocols/more/header.py": ("MoreHeader",),
    })

    def project_targets(self) -> tuple[str, ...]:
        """Everything any rule looks at (style targets already cover src)."""
        return self.style_targets

    def with_root_targets(self, targets: tuple[str, ...]) -> "AnalysisConfig":
        """A copy scanning different targets (used by fixture tests)."""
        return replace(self, style_targets=targets)


class Rule:
    """Base class: one named, registered invariant."""

    name: str = ""
    description: str = ""

    def check(self, project: Project, config: AnalysisConfig) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by its ``name``) to the registry."""
    instance = rule_class()
    if not instance.name:
        raise ValueError(f"rule {rule_class.__name__} has no name")
    if instance.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {instance.name!r}")
    _REGISTRY[instance.name] = instance
    return rule_class


def all_rules() -> dict[str, Rule]:
    """The full rule registry, keyed by rule name."""
    return dict(_REGISTRY)


def get_rule(name: str) -> Rule:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown rule {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None


#: The unused-suppression audit is driven by the framework itself (only
#: ``run_rules`` knows which suppressions fired), not by a Rule.check.
SUPPRESSION_AUDIT_RULE = "SUP001"


def run_rules(root: Path | str, config: AnalysisConfig | None = None,
              select: Iterable[str] | None = None) -> list[Finding]:
    """Run the selected rules (default: all) over ``root``; sorted findings.

    Findings on lines carrying a matching ``# repro: allow-<RULE>``
    suppression are dropped here, so every caller — CLI, lint fallback,
    tests — sees identical suppression semantics.  When ``SUP001`` is in
    the selection the framework additionally audits the suppressions
    themselves: an ``allow-<RULE>`` comment that suppressed nothing is a
    finding (a suppression is only audited against rules that actually
    ran this invocation, so a partial ``--select`` never flags comments
    belonging to rules it skipped — except for ``--select SUP001`` alone,
    which runs every other rule silently to audit against the full set).
    """
    config = config if config is not None else AnalysisConfig()
    project = Project(Path(root), config.project_targets())
    names = list(select) if select is not None else sorted(_REGISTRY)
    for name in names:
        get_rule(name)  # unknown names error out before any rule runs
    audit = SUPPRESSION_AUDIT_RULE in names
    executed = [name for name in names if name != SUPPRESSION_AUDIT_RULE]
    report = True
    if audit and not executed:
        executed = sorted(set(_REGISTRY) - {SUPPRESSION_AUDIT_RULE})
        report = False  # rules run only to credit suppressions
    findings: list[Finding] = []
    used: dict[str, set[tuple[int, str]]] = {}
    for name in executed:
        rule = get_rule(name)
        for finding in rule.check(project, config):
            source = project.get(finding.path)
            if source is not None:
                sites = source.covering_sites(finding.rule, finding.line)
                if sites:
                    used.setdefault(finding.path, set()).update(
                        (site, finding.rule) for site in sites)
                    continue
            if report:
                findings.append(finding)
    if audit:
        audited = set(executed)
        for source in project.files:
            used_here = used.get(source.relative, set())
            for line, rule_name, file_scope in source.suppression_sites():
                if rule_name not in audited or (line, rule_name) in used_here:
                    continue
                if source.is_suppressed(SUPPRESSION_AUDIT_RULE, line):
                    continue
                scope = "anywhere in this file" if file_scope else "here"
                findings.append(Finding(
                    SUPPRESSION_AUDIT_RULE, source.relative, line,
                    f"unused suppression: `# repro: allow-{rule_name}` "
                    f"matches no {rule_name} finding {scope} — remove it "
                    "(or fix the rule selection)"))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def dotted_name(node: ast.AST) -> str | None:
    """``ast.Name``/``ast.Attribute`` chain -> dotted string (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin for every top-level-ish import.

    Walks the whole tree (imports inside functions count too) and maps
    ``import time`` -> ``{"time": "time"}``, ``import numpy as np`` ->
    ``{"np": "numpy"}``, ``from time import perf_counter as pc`` ->
    ``{"pc": "time.perf_counter"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve_call_name(func: ast.AST, aliases: dict[str, str]) -> str | None:
    """The canonical dotted name a call target resolves to, or ``None``.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; a bare ``perf_counter`` imported from
    ``time`` resolves to ``time.perf_counter``.
    """
    dotted = dotted_name(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin
