"""PERF001: hot-path hygiene for the registered hottest modules.

The event engine, MAC, medium, GF kernels and the MORE agent together
execute millions of times per simulated transfer; PR 4 bought its 2x
end-to-end speedup largely by removing per-event allocation from exactly
these modules.  This rule keeps those wins from silently eroding:

* registered classes keep ``__slots__`` (a literal assignment or
  ``@dataclass(slots=True)``) — dict-backed instances on the per-frame
  path cost both allocation and attribute-lookup time;
* no ``lambda`` anywhere in a hot module — closures allocated per event
  were precisely the pattern PR 4 replaced with bound methods (the
  retained legacy reference paths carry explicit
  ``# repro: allow-PERF001`` annotations);
* no ``print`` — stdout in the event loop is both a performance cliff and
  a determinism hazard for tools that parse run output.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.framework import (
    AnalysisConfig,
    Finding,
    Project,
    Rule,
    SourceFile,
    register,
)


def _has_slots(cls: ast.ClassDef) -> bool:
    for node in cls.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name) \
                and node.target.id == "__slots__":
            return True
    for decorator in cls.decorator_list:
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "slots" \
                        and isinstance(keyword.value, ast.Constant) \
                        and keyword.value.value is True:
                    return True
    return False


@register
class HotPathHygiene(Rule):
    """PERF001: slots kept, no lambda allocation, no print in hot modules."""

    name = "PERF001"
    description = ("hot modules keep __slots__ on registered classes, no "
                   "lambdas, no print")

    def check(self, project: Project, config: AnalysisConfig) -> Iterable[Finding]:
        for relative, class_names in sorted(config.slots_classes.items()):
            source = project.get(relative)
            if source is None or source.tree is None:
                continue
            yield from self._check_slots(source, class_names)
        for relative in config.hot_modules:
            source = project.get(relative)
            if source is None or source.tree is None:
                continue
            yield from self._check_allocation(source)

    def _check_slots(self, source: SourceFile,
                     class_names: tuple[str, ...]) -> Iterator[Finding]:
        classes = {node.name: node for node in source.tree.body
                   if isinstance(node, ast.ClassDef)}
        for class_name in class_names:
            cls = classes.get(class_name)
            if cls is None:
                yield Finding(
                    self.name, source.relative, 1,
                    f"registered hot-path class `{class_name}` not found "
                    "(update the PERF001 registry if it moved)",
                )
            elif not _has_slots(cls):
                yield Finding(
                    self.name, source.relative, cls.lineno,
                    f"`{class_name}` lost its __slots__: instances on the "
                    "per-frame path must not carry a __dict__",
                )

    def _check_allocation(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Lambda):
                yield Finding(
                    self.name, source.relative, node.lineno,
                    "lambda in a hot module allocates a closure per call "
                    "site execution; use a bound method or module function",
                )
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "print":
                yield Finding(
                    self.name, source.relative, node.lineno,
                    "print() in a hot module: use the trace/stats collectors",
                )
