"""Style rules: the stdlib lint subset, now framework rules.

These are the checks ``scripts/lint.py`` enforces when ruff is not
installed (hermetic containers run exactly this path), ported onto the
:mod:`repro.analysis` framework so the lint fallback, the ``repro-check``
CLI and the fixture tests share one implementation per rule:

* **SYN001** — the file parses at all;
* **E501** — lines longer than the configured limit;
* **W191** — tabs in indentation;
* **W291/W293** — trailing whitespace on code / blank lines;
* **F401** — imports never used in the module.  ``__init__.py`` re-export
  hubs, ``import x as x`` / ``from m import x as x`` explicit re-exports,
  names referenced from string constants (``__all__``, doctests) and —
  fixing a long-standing fallback bug — imports guarded by
  ``if TYPE_CHECKING:`` are all exempt.

Unlike the invariant rules these cover every configured target directory,
not just ``src/repro``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.framework import (
    AnalysisConfig,
    Finding,
    Project,
    Rule,
    SourceFile,
    register,
)


@register
class SyntaxValidity(Rule):
    """SYN001: every target file must parse."""

    name = "SYN001"
    description = "every python file under the targets parses"

    def check(self, project: Project, config: AnalysisConfig) -> Iterable[Finding]:
        for source in project.files:
            error = source.syntax_error
            if error is not None:
                yield Finding(self.name, source.relative, error.lineno or 1,
                              f"syntax error: {error.msg}")


class _LineRule(Rule):
    """Shared shape for the per-line textual rules."""

    def check(self, project: Project, config: AnalysisConfig) -> Iterable[Finding]:
        for source in project.files:
            for number, line in enumerate(source.lines, start=1):
                yield from self.check_line(source, number, line, config)

    def check_line(self, source: SourceFile, number: int, line: str,
                   config: AnalysisConfig) -> Iterator[Finding]:
        raise NotImplementedError


@register
class LineLength(_LineRule):
    """E501: configured maximum line length."""

    name = "E501"
    description = "line length stays within the configured limit"

    def check_line(self, source: SourceFile, number: int, line: str,
                   config: AnalysisConfig) -> Iterator[Finding]:
        if len(line) > config.line_length:
            yield Finding(self.name, source.relative, number,
                          f"line too long ({len(line)} > {config.line_length})")


@register
class TabIndentation(_LineRule):
    """W191: no tabs in indentation."""

    name = "W191"
    description = "indentation uses spaces, never tabs"

    def check_line(self, source: SourceFile, number: int, line: str,
                   config: AnalysisConfig) -> Iterator[Finding]:
        if line.lstrip(" ").startswith("\t"):
            yield Finding(self.name, source.relative, number,
                          "tab in indentation")


@register
class TrailingWhitespace(_LineRule):
    """W291: no trailing whitespace on code lines."""

    name = "W291"
    description = "no trailing whitespace after code"

    def check_line(self, source: SourceFile, number: int, line: str,
                   config: AnalysisConfig) -> Iterator[Finding]:
        if line != line.rstrip() and line.strip():
            yield Finding(self.name, source.relative, number,
                          "trailing whitespace")


@register
class BlankLineWhitespace(_LineRule):
    """W293: blank lines carry no whitespace."""

    name = "W293"
    description = "blank lines contain no whitespace"

    def check_line(self, source: SourceFile, number: int, line: str,
                   config: AnalysisConfig) -> Iterator[Finding]:
        if line != line.rstrip() and not line.strip():
            yield Finding(self.name, source.relative, number,
                          "whitespace on blank line")


def _is_type_checking_test(test: ast.expr) -> bool:
    """True for ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:``."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


class _ImportUsage(ast.NodeVisitor):
    """Imported top-level names (with guard info) and every name used."""

    def __init__(self) -> None:
        self.imported: dict[str, int] = {}
        self.used: set[str] = set()
        self._type_checking_depth = 0

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self.visit(node.test)
            self._type_checking_depth += 1
            for child in node.body:
                self.visit(child)
            self._type_checking_depth -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        if self._type_checking_depth:
            return  # type-only imports exist solely for annotations
        for alias in node.names:
            if alias.asname == alias.name.split(".")[0]:
                continue  # `import x as x`: an explicit re-export idiom
            name = alias.asname or alias.name.split(".")[0]
            self.imported.setdefault(name, node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._type_checking_depth:
            return
        for alias in node.names:
            if alias.name == "*" or alias.asname == alias.name:
                continue
            name = alias.asname or alias.name
            self.imported.setdefault(name, node.lineno)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)


def _string_referenced(name: str, tree: ast.Module) -> bool:
    """True when ``name`` appears as a whole word in a string constant.

    Covers ``__all__`` entries and docstring/doctest references without the
    false negatives raw substring containment would produce (an unused
    ``np`` must not be excused by the word "input" appearing somewhere).
    """
    pattern = re.compile(rf"\b{re.escape(name)}\b")
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if pattern.search(node.value):
                return True
    return False


@register
class UnusedImports(Rule):
    """F401: imports must be used (modulo the documented exemptions)."""

    name = "F401"
    description = ("no unused imports; __init__.py, `import x as x`, "
                   "__all__/string references and TYPE_CHECKING guards exempt")

    def check(self, project: Project, config: AnalysisConfig) -> Iterable[Finding]:
        for source in project.files:
            if source.path.name == "__init__.py" or source.tree is None:
                continue
            usage = _ImportUsage()
            usage.visit(source.tree)
            for name, lineno in sorted(usage.imported.items(),
                                       key=lambda kv: kv[1]):
                if name in usage.used or name == "annotations":
                    continue
                if _string_referenced(name, source.tree):
                    continue  # __all__ entries / doctest references
                yield Finding(self.name, source.relative, lineno,
                              f"'{name}' imported but unused")
