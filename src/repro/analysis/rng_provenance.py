"""DET101: whole-program RNG provenance.

The paper's structure-for-randomness trade is only reproducible because
every random draw in the simulator is attributable to a *declared stream
root*: the main simulation Generator (``Simulator.rng``, seeded once from
``RunConfig.seed``), or a throwaway generator derived per query from a
``(seed, stream, counter)`` tuple (channel, mobility, fault,
refresh-probe streams).  DET002/DET003 police the storage half of that
contract per file; DET101 uses the dataflow layer to police the *flow*
half across function boundaries:

* **main-RNG leakage** — a value tagged with the main root arrives at a
  draw inside a counter-based module.  One such draw advances the main
  stream a data-dependent number of times, which desynchronises every
  downstream consumer between engine variants (the exact divergence the
  differential tests exist to catch, now rejected at parse time);
* **query-order dependence** — a draw inside a counter-based module whose
  receiver was read from an instance attribute holding a generator.
  However the generator got there (constructed elsewhere and passed in —
  invisible to DET002), its draw count now depends on how many queries
  came before (the PR 5 shared-Onoe-window bug class);
* **stream confusion** — one instance attribute is *directly* assigned
  generators from two or more distinct construction sites, so draws
  through it mix streams depending on which assignment ran last.
  (Generators arriving through a parameter do not count: a caller
  injecting its own stream through ``__init__`` is choosing a stream,
  not mixing them);
* **unattributable draws** — the receiver's provenance fully resolves yet
  contains no seeded root (e.g. a generator built without an explicit
  seed threaded through helpers).

Receivers the dataflow cannot resolve (bound-method aliases, values from
outside the project) are *skipped*, not flagged: DET101 trades known
false negatives for zero guessing, and documents that trade here.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.callgraph import FunctionInfo, get_callgraph, walk_unit
from repro.analysis.dataflow import MAIN_ATOM, DataFlow, get_dataflow
from repro.analysis.framework import (
    AnalysisConfig,
    Finding,
    Project,
    Rule,
    register,
)


@register
class RngProvenance(Rule):
    """DET101: every draw must be attributable to a declared stream root."""

    name = "DET101"
    description = ("interprocedural RNG provenance: no main-RNG draws or "
                   "stored-generator query-order dependence inside "
                   "counter-based modules, no attribute mixing generators "
                   "from multiple construction sites")

    def check(self, project: Project, config: AnalysisConfig) -> Iterable[Finding]:
        graph = get_callgraph(project, config)
        flow = get_dataflow(project, config)
        counter = set(config.purity_modules) | set(config.fault_modules)
        draw_methods = set(config.rng_draw_methods)
        for info in graph.functions.values():
            if info.source.relative not in counter:
                continue
            yield from self._check_draws(info, graph, flow, draw_methods)
        yield from self._check_stream_confusion(graph, flow)

    # -- draws inside counter-based modules -------------------------------- #

    def _check_draws(self, info: FunctionInfo, graph, flow: DataFlow,
                     draw_methods: set[str]) -> Iterator[Finding]:
        # Shallow walk: nested defs are their own FunctionInfo units, so
        # descending into them here would double-report every draw.
        for node in walk_unit(info.node.body):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in draw_methods):
                continue
            tags = flow.expr_tags(node.func.value, info)
            if not tags:
                continue  # unresolvable receiver: skip, never guess
            relative = info.source.relative
            if MAIN_ATOM in tags:
                yield Finding(
                    self.name, relative, node.lineno,
                    f"`.{node.func.attr}()` draws from the *main* simulation "
                    "RNG inside a counter-based module: this advances the "
                    "main stream a query-dependent number of times — derive "
                    "a throwaway generator from (seed, counter) instead",
                )
                continue
            stored = sorted(tag for tag in tags if tag[0] == "stored")
            if stored:
                _, class_id, attr = stored[0]
                owner = class_id.rpartition(":")[2]
                yield Finding(
                    self.name, relative, node.lineno,
                    f"`.{node.func.attr}()` draws from a generator stored on "
                    f"`{owner}.{attr}`: the realisation now depends on how "
                    "many queries preceded it (query-order dependence) — "
                    "re-derive the generator per (seed, counter) query",
                )
                continue
            if not any(tag[0] == "gen" and tag[3] for tag in tags):
                yield Finding(
                    self.name, relative, node.lineno,
                    f"`.{node.func.attr}()` resolves to no declared stream "
                    "root: every draw must trace back to the main RNG or a "
                    "seeded (seed, counter) construction site",
                )

    # -- attribute stream confusion (whole tree) --------------------------- #

    def _check_stream_confusion(self, graph, flow: DataFlow) -> Iterator[Finding]:
        for location, atoms in sorted(flow.direct_attr_atoms.items()):
            sites = sorted({(atom[1], atom[2]) for atom in atoms
                            if atom[0] == "gen" and atom[3]})
            if len(sites) < 2:
                continue
            cls = graph.classes.get(location[1])
            if cls is None:
                continue
            listed = ", ".join(f"{path}:{line}" for path, line in sites)
            yield Finding(
                self.name, cls.source.relative, cls.node.lineno,
                f"`{cls.name}.{location[2]}` is assigned generators from "
                f"{len(sites)} distinct construction sites ({listed}): draws "
                "through it mix streams depending on which assignment ran "
                "last — give each stream its own attribute",
            )
