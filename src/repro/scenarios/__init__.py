"""Declarative scenario layer: specs, presets and single-cell execution.

``ScenarioSpec`` (:mod:`repro.scenarios.spec`) describes an experiment as
plain data; :mod:`repro.scenarios.presets` names ready-made specs for every
paper figure plus generic mesh studies; :mod:`repro.scenarios.execute` runs
one (scenario, seed) cell.  Sweeps across worker processes live in
:mod:`repro.experiments.parallel`; the front door is ``python -m repro``.
"""

from repro.scenarios.build import (
    CHANNEL_KINDS,
    TOPOLOGY_BUILDERS,
    WORKLOAD_KINDS,
    build_channel,
    build_flow_sets,
    build_mobility,
    build_pairs,
    build_topology,
)
from repro.sim.channels import ChannelSpec
from repro.topology.mobility import MOBILITY_KINDS, MobilitySpec
from repro.scenarios.execute import CellResult, run_cell, run_cell_dict
from repro.scenarios.presets import PRESETS, get_preset, list_presets, register
from repro.scenarios.spec import (
    MIN_BATCHES_PER_TRANSFER,
    MODES,
    ScenarioCell,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

__all__ = [
    "CHANNEL_KINDS",
    "CellResult",
    "ChannelSpec",
    "MIN_BATCHES_PER_TRANSFER",
    "MOBILITY_KINDS",
    "MODES",
    "MobilitySpec",
    "PRESETS",
    "ScenarioCell",
    "ScenarioSpec",
    "TOPOLOGY_BUILDERS",
    "TopologySpec",
    "WORKLOAD_KINDS",
    "WorkloadSpec",
    "build_channel",
    "build_flow_sets",
    "build_mobility",
    "build_pairs",
    "build_topology",
    "get_preset",
    "list_presets",
    "register",
    "run_cell",
    "run_cell_dict",
]
