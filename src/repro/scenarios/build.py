"""Materialise the declarative parts of a scenario: topology, workload, channel.

The builders are pure dispatch: a :class:`~repro.scenarios.spec.TopologySpec`
names a generator from :mod:`repro.topology.generator`, a
:class:`~repro.scenarios.spec.WorkloadSpec` names a pair selector from
:mod:`repro.experiments.workloads`, and a
:class:`~repro.sim.channels.ChannelSpec` names a channel model from
:mod:`repro.sim.channels`.  Everything is deterministic given the spec (and
the cell seed, when the spec does not pin its own).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.experiments.workloads import (
    challenged_pairs,
    multiflow_sets,
    random_pairs,
    spatial_reuse_pairs,
)
from repro.sim.channels import (
    CHANNEL_MODELS,
    ChannelModel,
    ChannelSpec,
    build_channel_model,
)
from repro.scenarios.spec import TopologySpec, WorkloadSpec
from repro.topology.mobility import (
    MobilityModel,
    MobilitySpec,
    build_mobility_model,
)
from repro.topology.generator import (
    chain,
    cost_gap_topology,
    diamond,
    grid,
    indoor_testbed,
    random_geometric,
    random_mesh,
    two_hop_relay,
)
from repro.topology.graph import Topology

#: Topology generators addressable from a :class:`TopologySpec`.
TOPOLOGY_BUILDERS: dict[str, Callable[..., Topology]] = {
    "indoor_testbed": indoor_testbed,
    "chain": chain,
    "grid": grid,
    "diamond": diamond,
    "two_hop_relay": two_hop_relay,
    "random_mesh": random_mesh,
    "random_geometric": random_geometric,
    "cost_gap": cost_gap_topology,
}

#: Workload kinds addressable from a :class:`WorkloadSpec`.
WORKLOAD_KINDS = ("random_pairs", "spatial_reuse", "challenged", "explicit", "multiflow")

#: Channel-model kinds addressable from a scenario's ``channel`` section.
CHANNEL_KINDS = tuple(sorted(CHANNEL_MODELS))


def build_channel(spec: ChannelSpec, topology: Topology,
                  default_seed: int = 0) -> ChannelModel:
    """Instantiate (and bind) the channel model a spec describes.

    ``default_seed`` (the cell seed) drives the model's private RNG stream
    unless the channel params pin their own ``seed``.  The experiment
    runner builds its model through :class:`~repro.sim.radio.SimConfig`;
    this helper serves tests and ad-hoc studies that work with a bare
    :class:`~repro.sim.medium.WirelessMedium`.
    """
    model = build_channel_model(spec, seed=default_seed)
    model.bind(topology)
    return model


def build_mobility(spec: MobilitySpec, topology: Topology,
                   default_seed: int = 0) -> MobilityModel | None:
    """Instantiate (and bind) the mobility process a spec describes.

    ``default_seed`` (the cell seed) drives the model's private RNG stream
    unless the mobility params pin their own ``seed``.  Returns ``None``
    for a static spec.  The experiment runner builds its process through
    :class:`~repro.sim.radio.SimConfig`; this helper serves tests and
    ad-hoc studies working with a bare topology.
    """
    model = build_mobility_model(spec, seed=default_seed)
    if model is not None:
        model.bind(topology)
    return model


def build_topology(spec: TopologySpec) -> Topology:
    """Instantiate the topology a spec describes."""
    try:
        builder = TOPOLOGY_BUILDERS[spec.kind]
    except KeyError:
        raise ValueError(f"unknown topology kind {spec.kind!r}; expected one of "
                         f"{sorted(TOPOLOGY_BUILDERS)}") from None
    return builder(**spec.params)


def _workload_seed(spec: WorkloadSpec, default_seed: int) -> int:
    return int(spec.params.get("seed", default_seed))


def build_pairs(spec: WorkloadSpec, topology: Topology,
                default_seed: int) -> list[tuple[int, int]]:
    """The source-destination pairs of a single-flow-at-a-time workload.

    ``default_seed`` (the cell seed) drives pair selection unless the
    workload params pin their own ``seed`` — the same convention the paper
    harnesses use, where one seed covers both selection and simulation.
    """
    params: dict[str, Any] = dict(spec.params)
    params.pop("seed", None)
    seed = _workload_seed(spec, default_seed)
    if spec.kind == "explicit":
        pairs = params.get("pairs", [])
        return [(int(source), int(destination)) for source, destination in pairs]
    if spec.kind == "random_pairs":
        return random_pairs(topology, count=int(params.pop("count", 10)), seed=seed,
                            **params)
    if spec.kind == "spatial_reuse":
        count = int(params.pop("count", 6))
        path_hops = int(params.pop("path_hops", 4))
        pairs = spatial_reuse_pairs(topology, count, seed=seed, path_hops=path_hops,
                                    **params)
        if not pairs:
            # Same fallback as the Figure 4-4 harness: the longest available
            # paths when no concurrent first/last-hop pair exists.
            pairs = random_pairs(topology, count, seed=seed,
                                 min_hops=max(2, path_hops - 1))
        return pairs
    if spec.kind == "challenged":
        return challenged_pairs(topology, count=int(params.pop("count", 10)), seed=seed,
                                **params)
    raise ValueError(f"workload kind {spec.kind!r} does not describe plain pairs; "
                     f"expected one of {WORKLOAD_KINDS[:4]}")


def build_flow_sets(spec: WorkloadSpec, topology: Topology,
                    default_seed: int) -> list[list[tuple[int, int]]]:
    """The concurrent flow sets of a ``multiflow`` workload.

    Draws ``set_count`` independent sets of ``flows_per_set`` pairs and
    truncates each to ``flow_count`` flows — the prefix construction of the
    Figure 4-5 harness, which keeps the series comparable across counts.
    """
    if spec.kind != "multiflow":
        raise ValueError(f"expected a multiflow workload, got {spec.kind!r}")
    seed = _workload_seed(spec, default_seed)
    flows_per_set = int(spec.params.get("flows_per_set", 4))
    set_count = int(spec.params.get("set_count", 3))
    flow_count = int(spec.params.get("flow_count", flows_per_set))
    if not 1 <= flow_count <= flows_per_set:
        raise ValueError(f"flow_count must be in [1, {flows_per_set}], got {flow_count}")
    base_sets = multiflow_sets(topology, flows_per_set, set_count, seed=seed)
    return [flow_set[:flow_count] for flow_set in base_sets]
