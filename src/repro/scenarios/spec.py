"""Declarative experiment descriptions: the :class:`ScenarioSpec` schema.

A scenario describes *what* to simulate — topology, workload, protocols,
transfer configuration, replication seeds and sweep axes — as plain data
that round-trips through dicts and JSON.  Execution lives in
:mod:`repro.scenarios.execute` (one cell) and
:mod:`repro.experiments.parallel` (a whole sweep across worker processes);
named presets covering the paper's figures live in
:mod:`repro.scenarios.presets`.

The unit of execution is a :class:`ScenarioCell`: one fully-resolved
scenario (every sweep axis pinned to a single value) plus one seed.
``ScenarioSpec.expand()`` produces the cartesian product of all sweep axes
and seeds, so a sweep is just a list of independent, deterministic cells —
which is what makes parallel execution bit-for-bit identical to serial.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields
from typing import Any

from repro.experiments.runner import PROTOCOLS, RunConfig
from repro.sim.channels import CHANNEL_MODELS, ChannelSpec
from repro.sim.faults import FAULT_KINDS, FaultSpec
from repro.topology.mobility import MOBILITY_KINDS, MobilitySpec

#: Execution modes understood by :func:`repro.scenarios.execute.run_cell`.
MODES = ("throughput", "multiflow", "gap")

#: A transfer always spans at least this many batches, mirroring the
#: Figure 4-7 harness (``total_packets = max(2 * K, total_packets)``) so a
#: batch-size sweep never degenerates into a sub-batch transfer.
MIN_BATCHES_PER_TRANSFER = 2


def _apply_dotted(spec: "ScenarioSpec", path: str, value: Any) -> None:
    """Set one dotted-path override (e.g. ``run.batch_size``) on ``spec``."""
    head, _, rest = path.partition(".")
    if head == "run":
        if not rest or "." in rest:
            raise ValueError(f"run overrides need a single field name, got {path!r}")
        if rest not in {f.name for f in fields(RunConfig)}:
            raise ValueError(f"unknown RunConfig field {rest!r} in axis {path!r}")
        spec.run[rest] = value
    elif head in ("topology", "workload"):
        target = getattr(spec, head)
        if not rest:
            raise ValueError(f"{head} overrides need a parameter name, got {path!r}")
        if rest == "kind":
            target.kind = value
        else:
            target.params[rest] = value
    elif head == "channel":
        # `channel=gilbert_elliott` (a bare kind) and `channel.kind=...` both
        # switch the model; `channel.<param>` sets one model parameter, so
        # channel axes are sweepable like any other.  Switching to a
        # *different* kind resets the params: the old model's knobs would be
        # unknown keywords for the new one.
        if not rest or rest == "kind":
            if value not in CHANNEL_MODELS:
                raise ValueError(f"unknown channel kind {value!r}; expected one "
                                 f"of {sorted(CHANNEL_MODELS)}")
            if value != spec.channel.kind:
                spec.channel = ChannelSpec(kind=value)
        else:
            spec.channel.params[rest] = value
    elif head == "mobility":
        # Same conventions as `channel`: a bare kind (or `mobility.kind`)
        # switches the model and resets stale params; `mobility.<param>`
        # sets one parameter, so mobility axes are sweepable too.
        if not rest or rest == "kind":
            if value not in MOBILITY_KINDS:
                raise ValueError(f"unknown mobility kind {value!r}; expected "
                                 f"one of {MOBILITY_KINDS}")
            if value != spec.mobility.kind:
                spec.mobility = MobilitySpec(kind=value)
        else:
            spec.mobility.params[rest] = value
    elif head == "faults":
        # Same conventions as `channel`/`mobility`: a bare kind (or
        # `faults.kind`) switches the fault process and resets stale params;
        # `faults.<param>` sets one parameter, making fault severity (crash
        # rates, outage windows) a sweepable axis like any other.
        if not rest or rest == "kind":
            if value not in FAULT_KINDS:
                raise ValueError(f"unknown faults kind {value!r}; expected "
                                 f"one of {FAULT_KINDS}")
            if value != spec.faults.kind:
                spec.faults = FaultSpec(kind=value)
        else:
            spec.faults.params[rest] = value
    elif head == "protocols" and not rest:
        # A bare string means one protocol, not a tuple of its characters.
        spec.protocols = (value,) if isinstance(value, str) else tuple(value)
    elif head == "mode" and not rest:
        spec.mode = str(value)
    else:
        raise ValueError(
            f"unsupported override path {path!r}; expected run.*, topology.*, "
            "workload.*, channel.*, mobility.*, faults.*, protocols or mode"
        )


@dataclass
class TopologySpec:
    """Which topology generator to call and with what parameters.

    ``kind`` names a generator in :mod:`repro.topology.generator` (see
    :data:`repro.scenarios.build.TOPOLOGY_BUILDERS`); ``params`` are its
    keyword arguments.  Generators are deterministic given their params, so
    a TopologySpec fully determines the mesh.
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TopologySpec":
        if "kind" not in data:
            raise ValueError("topology spec needs a 'kind' field")
        return cls(kind=data["kind"], params=dict(data.get("params", {})))


@dataclass
class WorkloadSpec:
    """Which source-destination pairs (or flow sets) the experiment drives.

    ``kind`` selects a generator from :mod:`repro.experiments.workloads`
    (``random_pairs``, ``spatial_reuse``, ``challenged``, ``explicit``,
    ``multiflow``); ``params`` are its arguments.  If ``params`` carries no
    ``seed``, the cell's seed is used, matching the paper harnesses where
    one seed drives both pair selection and the simulator.
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WorkloadSpec":
        if "kind" not in data:
            raise ValueError("workload spec needs a 'kind' field")
        return cls(kind=data["kind"], params=dict(data.get("params", {})))


@dataclass
class ScenarioSpec:
    """One declarative experiment: topology × workload × protocols × sweep.

    Attributes:
        name: registry / cache key; also the subdirectory under ``results/``.
        description: one-line human description (shown by ``repro list``).
        topology: the mesh to simulate on.
        workload: the flows to drive across it.
        channel: the channel model the medium resolves receptions against
            (:class:`~repro.sim.channels.ChannelSpec`); defaults to the
            static Bernoulli delivery matrix.  The cell seed drives the
            channel RNG stream unless ``channel.params.seed`` pins one.
        mobility: the dynamic-topology process
            (:class:`~repro.topology.mobility.MobilitySpec`); defaults to
            a static topology.  Same seeding convention as ``channel``.
            Pair with a finite ``run.refresh_period`` for an online
            control plane (a plan refreshed mid-flow), or leave it at
            ``inf`` to study stale plans.
        faults: the fault-injection process
            (:class:`~repro.sim.faults.FaultSpec`); defaults to fault-free.
            Same seeding convention as ``channel``.  Pair with a finite
            ``run.progress_timeout`` so crashed forwarders trigger recovery
            re-plans and, failing that, a structured abort instead of a
            hang; set ``run.monitor`` for in-run liveness checking.
        protocols: protocol tokens; plain names (``MORE``, ``ExOR``,
            ``Srcr``) or variants such as ``Srcr/auto`` (Srcr with Onoe-style
            autorate, the Figure 4-6 baseline).
        mode: ``throughput`` (one flow at a time per pair, the Fig 4-2
            method), ``multiflow`` (concurrent flow sets, Fig 4-5) or
            ``gap`` (analytic ETX-vs-EOTX survey, Fig 5-1 — no simulator).
        run: overrides for :class:`repro.experiments.runner.RunConfig`
            fields (``batch_size``, ``total_packets``, ``bitrate``, …).
        seeds: replication seeds; each seed is one cell per sweep point.
        sweep: dotted-path axes (``run.batch_size``, ``workload.flow_count``)
            mapped to the list of values to sweep; cells are the cartesian
            product across axes.
    """

    name: str
    topology: TopologySpec
    workload: WorkloadSpec
    description: str = ""
    protocols: tuple[str, ...] = PROTOCOLS
    mode: str = "throughput"
    channel: ChannelSpec = field(default_factory=ChannelSpec)
    mobility: MobilitySpec = field(default_factory=MobilitySpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    run: dict[str, Any] = field(default_factory=dict)
    seeds: tuple[int, ...] = (1,)
    sweep: dict[str, tuple] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {MODES}")
        if isinstance(self.protocols, str):
            self.protocols = (self.protocols,)
        if isinstance(self.channel, dict):
            self.channel = ChannelSpec.from_dict(self.channel)
        if self.channel.kind not in CHANNEL_MODELS:
            raise ValueError(f"unknown channel kind {self.channel.kind!r}; "
                             f"expected one of {sorted(CHANNEL_MODELS)}")
        if isinstance(self.mobility, dict):
            self.mobility = MobilitySpec.from_dict(self.mobility)
        if self.mobility.kind not in MOBILITY_KINDS:
            raise ValueError(f"unknown mobility kind {self.mobility.kind!r}; "
                             f"expected one of {MOBILITY_KINDS}")
        if isinstance(self.faults, dict):
            self.faults = FaultSpec.from_dict(self.faults)
        if self.faults.kind not in FAULT_KINDS:
            raise ValueError(f"unknown faults kind {self.faults.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        self.protocols = tuple(self.protocols)
        self.seeds = tuple(int(s) for s in self.seeds)
        self.sweep = {path: tuple(values) for path, values in self.sweep.items()}

    # -- serialisation ----------------------------------------------------- #

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "topology": self.topology.to_dict(),
            "workload": self.workload.to_dict(),
            "protocols": list(self.protocols),
            "mode": self.mode,
            "channel": self.channel.to_dict(),
            "mobility": self.mobility.to_dict(),
            "faults": self.faults.to_dict(),
            "run": dict(self.run),
            "seeds": list(self.seeds),
            "sweep": {path: list(values) for path, values in self.sweep.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        missing = {"name", "topology", "workload"} - set(data)
        if missing:
            raise ValueError(f"scenario spec is missing required field(s): "
                             f"{sorted(missing)}")
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            topology=TopologySpec.from_dict(data["topology"]),
            workload=WorkloadSpec.from_dict(data["workload"]),
            protocols=data.get("protocols", PROTOCOLS),  # __post_init__ normalises
            mode=data.get("mode", "throughput"),
            channel=ChannelSpec.from_dict(data.get("channel", {"kind": "static"})),
            mobility=MobilitySpec.from_dict(data.get("mobility", {"kind": "none"})),
            faults=FaultSpec.from_dict(data.get("faults", {"kind": "none"})),
            run=dict(data.get("run", {})),
            seeds=tuple(data.get("seeds", (1,))),
            sweep={path: tuple(vals) for path, vals in data.get("sweep", {}).items()},
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # -- resolution -------------------------------------------------------- #

    def with_overrides(self, overrides: dict[str, Any]) -> "ScenarioSpec":
        """A deep copy with dotted-path overrides applied (sweep untouched)."""
        spec = copy.deepcopy(self)
        for path, value in overrides.items():
            _apply_dotted(spec, path, value)
        return spec

    def run_config(self, seed: int | None = None) -> RunConfig:
        """The :class:`RunConfig` for one cell of this scenario.

        ``seed`` wins unless the ``run`` overrides pin one explicitly.  The
        transfer is stretched to at least :data:`MIN_BATCHES_PER_TRANSFER`
        batches so batch-size sweeps stay well-posed.
        """
        known = {f.name for f in fields(RunConfig)}
        unknown = set(self.run) - known
        if unknown:
            raise ValueError(f"unknown RunConfig fields in scenario {self.name!r}: "
                             f"{sorted(unknown)}")
        values = dict(self.run)
        if seed is not None:
            values.setdefault("seed", int(seed))
        if not self.channel.is_static:
            values.setdefault("channel", self.channel.to_dict())
        if not self.mobility.is_static:
            values.setdefault("mobility", self.mobility.to_dict())
        if not self.faults.is_none:
            values.setdefault("faults", self.faults.to_dict())
        config = RunConfig(**values)
        config.total_packets = max(config.total_packets,
                                   MIN_BATCHES_PER_TRANSFER * config.batch_size)
        return config

    def expand(self) -> list["ScenarioCell"]:
        """All cells of this sweep: cartesian product of sweep axes × seeds.

        The cell order (axes in insertion order, seeds innermost) and each
        cell's content depend only on the spec, which is what makes result
        caching and parallel execution deterministic.
        """
        axis_paths = list(self.sweep)
        axis_values = [self.sweep[path] for path in axis_paths]
        cells = []
        index = 0
        for combo in itertools.product(*axis_values):
            axes = dict(zip(axis_paths, combo))
            resolved = self.with_overrides(axes)
            resolved.sweep = {}
            for seed in self.seeds:
                cell_spec = copy.deepcopy(resolved)
                cell_spec.seeds = (seed,)
                cells.append(ScenarioCell(scenario=cell_spec, seed=int(seed),
                                          axes=dict(axes), index=index))
                index += 1
        return cells


@dataclass
class ScenarioCell:
    """One fully-resolved (scenario, seed) point of a sweep."""

    scenario: ScenarioSpec
    seed: int
    axes: dict[str, Any] = field(default_factory=dict)
    index: int = 0

    def key(self) -> str:
        """A stable content hash identifying this cell (used as cache key)."""
        payload = {
            "scenario": self.scenario.to_dict(),
            "seed": self.seed,
            "axes": self.axes,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:16]

    def label(self) -> str:
        """Short human label: axis values plus the seed."""
        parts = [f"{path.split('.')[-1]}={value}" for path, value in self.axes.items()]
        parts.append(f"seed={self.seed}")
        return " ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "seed": self.seed,
            "axes": dict(self.axes),
            "index": self.index,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioCell":
        return cls(
            scenario=ScenarioSpec.from_dict(data["scenario"]),
            seed=int(data["seed"]),
            axes=dict(data.get("axes", {})),
            index=int(data.get("index", 0)),
        )
