"""Named scenario presets: the paper's figures plus generic mesh studies.

Each preset is a fully-declarative :class:`~repro.scenarios.spec.ScenarioSpec`
whose defaults mirror the corresponding harness in
:mod:`repro.experiments.figures` — same topology, same workload selection
seed, same run seed — so running a preset through the scenario layer
reproduces the serial figure harness bit-for-bit.  Presets are looked up by
name from the CLI (``python -m repro run --preset fig_4_2``) and from code
via :func:`get_preset`.
"""

from __future__ import annotations

import copy

from repro.scenarios.spec import ScenarioSpec, TopologySpec, WorkloadSpec
from repro.sim.channels import ChannelSpec
from repro.sim.faults import FaultSpec
from repro.sim.radio import RATE_5_5MBPS, RATE_11MBPS
from repro.topology.mobility import MobilitySpec

#: The synthetic 20-node, 3-floor indoor testbed of every Chapter 4 figure
#: (``repro.experiments.figures.default_testbed``).
_TESTBED = TopologySpec("indoor_testbed", {"node_count": 20, "floors": 3, "seed": 7})

PRESETS: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add ``spec`` to the registry (last registration wins)."""
    PRESETS[spec.name] = spec
    return spec


def get_preset(name: str) -> ScenarioSpec:
    """A deep copy of the named preset (safe to mutate / override)."""
    try:
        return copy.deepcopy(PRESETS[name])
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; run `python -m repro list` or see "
                       f"{sorted(PRESETS)}") from None


def list_presets() -> list[ScenarioSpec]:
    """All registered presets, sorted by name."""
    return [copy.deepcopy(PRESETS[name]) for name in sorted(PRESETS)]


# --------------------------------------------------------------------------- #
# Paper figures (Chapter 4 evaluation + the Section 5.7 gap survey)
# --------------------------------------------------------------------------- #

register(ScenarioSpec(
    name="fig_4_2",
    description="Fig 4-2: unicast throughput CDF, MORE vs ExOR vs Srcr over "
                "random testbed pairs",
    topology=copy.deepcopy(_TESTBED),
    workload=WorkloadSpec("random_pairs", {"count": 12}),
    seeds=(1,),
))

register(ScenarioSpec(
    name="fig_4_3",
    description="Fig 4-3: per-pair scatter vs Srcr (same runs as fig_4_2; the "
                "scatter is a different view of the same data)",
    topology=copy.deepcopy(_TESTBED),
    workload=WorkloadSpec("random_pairs", {"count": 12}),
    seeds=(1,),
))

register(ScenarioSpec(
    name="fig_4_4",
    description="Fig 4-4: spatial reuse on 4-hop paths whose first and last "
                "hop can transmit concurrently",
    topology=copy.deepcopy(_TESTBED),
    workload=WorkloadSpec("spatial_reuse", {"count": 6, "path_hops": 4}),
    seeds=(2,),
))

register(ScenarioSpec(
    name="fig_4_5",
    description="Fig 4-5: average per-flow throughput vs number of concurrent "
                "flows (sweep workload.flow_count)",
    topology=copy.deepcopy(_TESTBED),
    workload=WorkloadSpec("multiflow", {"flows_per_set": 4, "set_count": 3}),
    mode="multiflow",
    seeds=(3,),
    sweep={"workload.flow_count": (1, 2, 3, 4)},
))

register(ScenarioSpec(
    name="fig_4_6",
    description="Fig 4-6: opportunistic routing at fixed 11 Mb/s vs Srcr with "
                "Onoe autorate",
    topology=copy.deepcopy(_TESTBED),
    workload=WorkloadSpec("random_pairs", {"count": 8}),
    protocols=("MORE", "ExOR", "Srcr", "Srcr/auto"),
    run={"bitrate": RATE_11MBPS},
    seeds=(4,),
))

register(ScenarioSpec(
    name="fig_4_7",
    description="Fig 4-7: batch-size sensitivity, MORE vs ExOR "
                "(sweep run.batch_size)",
    topology=copy.deepcopy(_TESTBED),
    workload=WorkloadSpec("random_pairs", {"count": 6}),
    protocols=("MORE", "ExOR"),
    seeds=(5,),
    sweep={"run.batch_size": (8, 16, 32, 64, 128)},
))

register(ScenarioSpec(
    name="fig_5_1",
    description="Section 5.7: ETX-vs-EOTX ordering-gap survey on the testbed "
                "(analytic, no packet simulation)",
    topology=TopologySpec("indoor_testbed", {"node_count": 20, "floors": 3, "seed": 6}),
    workload=WorkloadSpec("random_pairs", {"count": 20}),
    mode="gap",
    seeds=(6,),
))

# --------------------------------------------------------------------------- #
# Generic scenario families beyond the paper
# --------------------------------------------------------------------------- #

register(ScenarioSpec(
    name="chain_smoke",
    description="Fast smoke scenario: one flow over a lossy 3-hop chain with "
                "weak skip links (seconds, used by CLI tests)",
    topology=TopologySpec("chain", {"hops": 3, "link_delivery": 0.7,
                                    "skip_delivery": 0.2}),
    workload=WorkloadSpec("explicit", {"pairs": [[0, 3]]}),
    run={"total_packets": 32, "batch_size": 16, "packet_size": 256,
         "coding_payload_size": 16},
    seeds=(1,),
))

register(ScenarioSpec(
    name="grid_5x5",
    description="5x5 grid mesh with diagonal links, random pairs, all three "
                "protocols",
    topology=TopologySpec("grid", {"rows": 5, "cols": 5}),
    workload=WorkloadSpec("random_pairs", {"count": 8, "min_hops": 2}),
    run={"total_packets": 64},
    seeds=(1,),
))

register(ScenarioSpec(
    name="random_geometric_16",
    description="16-node random geometric mesh (outdoor-style Roofnet loss "
                "profile), random pairs",
    topology=TopologySpec("random_geometric", {"node_count": 16, "area": 120.0,
                                               "seed": 2}),
    workload=WorkloadSpec("random_pairs", {"count": 8}),
    run={"total_packets": 64},
    seeds=(1,),
))

register(ScenarioSpec(
    name="chain_batch_sweep",
    description="Batch-size sweep (K=8..64) for MORE vs ExOR on a lossy "
                "4-hop chain",
    topology=TopologySpec("chain", {"hops": 4, "link_delivery": 0.7,
                                    "skip_delivery": 0.2}),
    workload=WorkloadSpec("explicit", {"pairs": [[0, 4]]}),
    protocols=("MORE", "ExOR"),
    run={"total_packets": 64, "packet_size": 512, "coding_payload_size": 16},
    seeds=(1,),
    sweep={"run.batch_size": (8, 16, 32, 64)},
))

register(ScenarioSpec(
    name="multiflow_grid",
    description="Contention study: 1-3 concurrent flows on a 4x4 grid "
                "(sweep workload.flow_count)",
    topology=TopologySpec("grid", {"rows": 4, "cols": 4}),
    workload=WorkloadSpec("multiflow", {"flows_per_set": 3, "set_count": 2}),
    mode="multiflow",
    run={"total_packets": 48},
    seeds=(1,),
    sweep={"workload.flow_count": (1, 2, 3)},
))

# --------------------------------------------------------------------------- #
# Scale tier: the engine hot-path workloads (see docs/performance.md)
# --------------------------------------------------------------------------- #

register(ScenarioSpec(
    name="large_mesh_200",
    description="Scale tier: 200-node random-geometric mesh, one 7-hop flow "
                "per protocol (the event-engine hot-path workload)",
    topology=TopologySpec("random_geometric", {"node_count": 200, "area": 420.0,
                                               "seed": 11}),
    # Explicit far pair (7 ETX hops): pair selection by hop count is
    # O(n^2 Dijkstra) at this scale, which would dwarf the simulation.
    workload=WorkloadSpec("explicit", {"pairs": [[168, 0]]}),
    run={"total_packets": 64, "batch_size": 32, "coding_payload_size": 16,
         "max_duration": 60.0},
    seeds=(1,),
))

register(ScenarioSpec(
    name="multiflow_scale",
    description="Scale tier: 8 concurrent flows on a 48-node random-geometric "
                "mesh (contention at scale)",
    topology=TopologySpec("random_geometric", {"node_count": 48, "area": 200.0,
                                               "seed": 11}),
    workload=WorkloadSpec("multiflow", {"flows_per_set": 8, "set_count": 1}),
    mode="multiflow",
    run={"total_packets": 48, "coding_payload_size": 16, "max_duration": 60.0},
    seeds=(1,),
))

# --------------------------------------------------------------------------- #
# Kilonode tier: 1000-node meshes (see docs/performance.md)
#
# At this density the paper's 10% pruning rule degenerates — the expected
# load spreads over 100+ candidate relays, none reaches 10% of the total,
# and pruning strands the flow — so every kilonode preset sets
# ``run.max_relays``: the fixed-size top-N-by-load cap of
# ``repro.metrics.credits.cap_forwarders``.  MORE-only: Srcr/ExOR route
# computation adds nothing to the decode-path workload these presets stress.
# --------------------------------------------------------------------------- #

#: The kilonode mesh: same node density as ``large_mesh_200``
#: (1000 / 940^2 vs 200 / 420^2 nodes per m^2), fully connected at seed 21.
_KILONODE_MESH = TopologySpec("random_geometric", {"node_count": 1000,
                                                   "area": 940.0, "seed": 21})

register(ScenarioSpec(
    name="kilonode",
    description="Kilonode tier: one 4-hop MORE flow across a 1000-node "
                "random-geometric mesh, forwarder list capped at the 10 "
                "highest-load relays",
    topology=copy.deepcopy(_KILONODE_MESH),
    # Explicit pair (node 441 is 4 ETX hops from node 0): hop-count pair
    # selection is O(n^2 Dijkstra) at this scale.
    workload=WorkloadSpec("explicit", {"pairs": [[441, 0]]}),
    protocols=("MORE",),
    run={"total_packets": 64, "batch_size": 32, "coding_payload_size": 16,
         "max_duration": 60.0, "max_relays": 10},
    seeds=(1,),
))

register(ScenarioSpec(
    name="kilonode_relays",
    description="Kilonode tier: throughput vs forwarder-list cap (the "
                "relay-count axis) on the 1000-node mesh",
    topology=copy.deepcopy(_KILONODE_MESH),
    workload=WorkloadSpec("explicit", {"pairs": [[441, 0]]}),
    protocols=("MORE",),
    run={"total_packets": 64, "batch_size": 32, "coding_payload_size": 16,
         "max_duration": 60.0, "max_relays": 10},
    seeds=(1,),
    sweep={"run.max_relays": (4, 8, 12, 16)},
))

register(ScenarioSpec(
    name="kilonode_bitrate",
    description="Kilonode tier: 5.5 vs 11 Mb/s data rate on the capped "
                "1000-node mesh flow (the bitrate axis)",
    topology=copy.deepcopy(_KILONODE_MESH),
    workload=WorkloadSpec("explicit", {"pairs": [[441, 0]]}),
    protocols=("MORE",),
    run={"total_packets": 64, "batch_size": 32, "coding_payload_size": 16,
         "max_duration": 60.0, "max_relays": 10},
    seeds=(1,),
    sweep={"run.bitrate": (RATE_5_5MBPS, RATE_11MBPS)},
))

# --------------------------------------------------------------------------- #
# Channel-model scenario families (see repro.sim.channels)
# --------------------------------------------------------------------------- #

register(ScenarioSpec(
    name="bursty_chain",
    description="Gilbert-Elliott bursty losses on a lossy 4-hop chain: how "
                "opportunistic routing rides out loss bursts",
    topology=TopologySpec("chain", {"hops": 4, "link_delivery": 0.75,
                                    "skip_delivery": 0.2}),
    workload=WorkloadSpec("explicit", {"pairs": [[0, 4]]}),
    channel=ChannelSpec("gilbert_elliott", {"bad_scale": 0.2,
                                            "mean_good_time": 0.5,
                                            "mean_bad_time": 0.08}),
    run={"total_packets": 64, "packet_size": 512, "coding_payload_size": 16},
    seeds=(1,),
))

register(ScenarioSpec(
    name="fading_grid",
    description="Block-fading 4x4 grid: log-distance path loss + shadowing "
                "redrawn every coherence interval over the grid coordinates",
    topology=TopologySpec("grid", {"rows": 4, "cols": 4}),
    workload=WorkloadSpec("random_pairs", {"count": 6, "min_hops": 2}),
    channel=ChannelSpec("distance_fading", {"coherence_time": 0.5,
                                            "shadowing_sigma_db": 5.0}),
    run={"total_packets": 48},
    seeds=(1,),
))

register(ScenarioSpec(
    name="trace_random_geometric",
    description="Trace-driven replay on the 16-node random-geometric mesh: "
                "selected links walk a Roofnet-style delivery time series",
    topology=TopologySpec("random_geometric", {"node_count": 16, "area": 120.0,
                                               "seed": 2}),
    workload=WorkloadSpec("random_pairs", {"count": 6}),
    channel=ChannelSpec("trace", {
        "interval": 0.5,
        # A bimodal Roofnet-style series: long good stretches punctuated by
        # deep fades, applied symmetrically to a handful of mid-mesh links.
        "series": {
            "0-4": [0.9, 0.85, 0.3, 0.1, 0.8, 0.9, 0.2, 0.7],
            "4-0": [0.9, 0.85, 0.3, 0.1, 0.8, 0.9, 0.2, 0.7],
            "3-7": [0.6, 0.1, 0.05, 0.6, 0.7, 0.1, 0.6, 0.65],
            "7-3": [0.6, 0.1, 0.05, 0.6, 0.7, 0.1, 0.6, 0.65],
            "5-9": [0.8, 0.8, 0.75, 0.2, 0.1, 0.8, 0.85, 0.3],
            "9-5": [0.8, 0.8, 0.75, 0.2, 0.1, 0.8, 0.85, 0.3],
        },
    }),
    run={"total_packets": 48},
    seeds=(1,),
))

# --------------------------------------------------------------------------- #
# Dynamic topologies: mobility / link churn + online link-state refresh
# (see repro.topology.mobility and repro.experiments.refresh)
# --------------------------------------------------------------------------- #

register(ScenarioSpec(
    name="mobile_mesh",
    description="Random-waypoint mobility over a 16-node geometric mesh with "
                "a 1 s link-state refresh loop (online control plane)",
    topology=TopologySpec("random_geometric", {"node_count": 16, "area": 120.0,
                                               "seed": 2}),
    workload=WorkloadSpec("random_pairs", {"count": 4}),
    mobility=MobilitySpec("random_waypoint", {"speed_min": 1.0, "speed_max": 6.0,
                                              "epoch_length": 0.5,
                                              "area": 120.0}),
    run={"total_packets": 96, "coding_payload_size": 16, "refresh_period": 1.0,
         "max_duration": 60.0},
    seeds=(1,),
))

register(ScenarioSpec(
    name="churn_chain",
    description="Markov link churn (up/down flapping) on a lossy 4-hop chain "
                "with a 0.75 s link-state refresh loop",
    topology=TopologySpec("chain", {"hops": 4, "link_delivery": 0.75,
                                    "skip_delivery": 0.25}),
    workload=WorkloadSpec("explicit", {"pairs": [[0, 4]]}),
    mobility=MobilitySpec("link_churn", {"mean_up_time": 2.0,
                                         "mean_down_time": 0.5,
                                         "down_scale": 0.1,
                                         "epoch_length": 0.25}),
    run={"total_packets": 96, "packet_size": 512, "coding_payload_size": 16,
         "refresh_period": 0.75, "max_duration": 60.0},
    seeds=(1,),
))

register(ScenarioSpec(
    name="stale_state_sweep",
    description="Link-state staleness axis under mobility: MORE vs ExOR vs "
                "Srcr as plans age (sweep run.refresh_period; inf = the "
                "paper's compute-once plans)",
    topology=TopologySpec("random_geometric", {"node_count": 16, "area": 120.0,
                                               "seed": 2}),
    workload=WorkloadSpec("random_pairs", {"count": 3}),
    mobility=MobilitySpec("random_waypoint", {"speed_min": 1.0, "speed_max": 6.0,
                                              "epoch_length": 0.5,
                                              "area": 120.0}),
    run={"total_packets": 192, "coding_payload_size": 16, "max_duration": 60.0},
    seeds=(1,),
    sweep={"run.refresh_period": (0.5, 2.0, 8.0, "inf")},
))

# --------------------------------------------------------------------------- #
# Fault injection: node crashes, outages and liveness monitoring
# (see repro.sim.faults, repro.sim.monitor and docs/faults.md)
# --------------------------------------------------------------------------- #

register(ScenarioSpec(
    name="node_churn_mesh",
    description="Node churn on a 16-node geometric mesh: relays crash and "
                "recover (exponential up/down) while a 1 s refresh loop "
                "re-plans around them; endpoints protected",
    topology=TopologySpec("random_geometric", {"node_count": 16, "area": 120.0,
                                               "seed": 2}),
    workload=WorkloadSpec("explicit", {"pairs": [[0, 12]]}),
    faults=FaultSpec("crash_recover", {"mean_uptime": 8.0, "mean_downtime": 1.5,
                                       "protect": [0, 12]}),
    run={"total_packets": 96, "coding_payload_size": 16, "refresh_period": 1.0,
         "progress_timeout": 4.0, "max_duration": 60.0},
    seeds=(1,),
))

register(ScenarioSpec(
    name="crash_recover_sweep",
    description="Fault-rate axis: MORE vs ExOR vs Srcr on a lossy 4-hop chain "
                "as relay mean uptime shrinks (sweep faults.mean_uptime); "
                "stalled flows abort gracefully via run.progress_timeout",
    topology=TopologySpec("chain", {"hops": 4, "link_delivery": 0.75,
                                    "skip_delivery": 0.2}),
    workload=WorkloadSpec("explicit", {"pairs": [[0, 4]]}),
    faults=FaultSpec("crash_recover", {"mean_downtime": 1.0,
                                       "protect": [0, 4]}),
    run={"total_packets": 64, "packet_size": 512, "coding_payload_size": 16,
         "refresh_period": 1.0, "progress_timeout": 3.0, "max_duration": 60.0},
    seeds=(1,),
    sweep={"faults.mean_uptime": (2.0, 6.0, 18.0)},
))

register(ScenarioSpec(
    name="kilonode_stranded",
    description="Regression: the PR 6 kilonode stranding pathology (10% "
                "pruning leaves no forwarders) with the liveness monitor on — "
                "running it raises a StallDiagnosis instead of hanging",
    topology=copy.deepcopy(_KILONODE_MESH),
    workload=WorkloadSpec("explicit", {"pairs": [[441, 0]]}),
    protocols=("MORE",),
    # Deliberately NO run.max_relays: the uncapped 10% rule is the bug.
    run={"total_packets": 64, "batch_size": 32, "coding_payload_size": 16,
         "max_duration": 60.0, "monitor": True, "monitor_interval": 1.0},
    seeds=(1,),
))

register(ScenarioSpec(
    name="multiflow_bursty",
    description="Concurrent flows under Gilbert-Elliott bursty loss on a 4x4 "
                "grid (sweep workload.flow_count)",
    topology=TopologySpec("grid", {"rows": 4, "cols": 4}),
    workload=WorkloadSpec("multiflow", {"flows_per_set": 3, "set_count": 2}),
    mode="multiflow",
    channel=ChannelSpec("gilbert_elliott", {"bad_scale": 0.25,
                                            "mean_good_time": 0.4,
                                            "mean_bad_time": 0.1}),
    run={"total_packets": 48},
    seeds=(1,),
    sweep={"workload.flow_count": (1, 2, 3)},
))
