"""Run one :class:`~repro.scenarios.spec.ScenarioCell` and shape its result.

A cell is completely self-contained (topology spec + workload spec + run
config + one seed), so this module is the unit that
:mod:`repro.experiments.parallel` ships to worker processes.  Results are
plain data (:class:`CellResult`) that round-trips through JSON for the
``results/`` cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.experiments.runner import RunConfig, run_flows, run_single_flow
from repro.experiments.stats import median_gain, summarize
from repro.metrics.gap import gap_survey, summarize_gaps
from repro.scenarios.build import build_flow_sets, build_pairs, build_topology
from repro.scenarios.spec import ScenarioCell


@dataclass
class CellResult:
    """Outcome of one cell: per-protocol series plus summary statistics."""

    scenario: str
    mode: str
    seed: int
    axes: dict[str, Any]
    key: str
    series: dict[str, list[float]]
    summary: dict[str, float]
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "mode": self.mode,
            "seed": self.seed,
            "axes": dict(self.axes),
            "key": self.key,
            "series": {name: list(values) for name, values in self.series.items()},
            "summary": dict(self.summary),
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CellResult":
        return cls(
            scenario=data["scenario"],
            mode=data["mode"],
            seed=int(data["seed"]),
            axes=dict(data.get("axes", {})),
            key=data["key"],
            series={name: list(values) for name, values in data["series"].items()},
            summary=dict(data.get("summary", {})),
            meta=dict(data.get("meta", {})),
        )

    def report(self) -> str:
        """A compact text table of this cell's series."""
        label = " ".join(f"{path}={value}" for path, value in self.axes.items())
        header = f"[{self.scenario}] seed={self.seed}" + (f" {label}" if label else "")
        lines = [header,
                 f"{'series':<14} {'median':>8} {'mean':>8} {'p10':>8} {'p90':>8} {'n':>4}"]
        for name, values in self.series.items():
            stats = summarize(values)
            lines.append(f"{name:<14} {stats.median:8.2f} {stats.mean:8.2f} "
                         f"{stats.p10:8.2f} {stats.p90:8.2f} {stats.count:4d}")
        gains = {k: v for k, v in self.summary.items() if k.endswith("_median_gain")}
        for key, value in gains.items():
            lines.append(f"{key}: {value:.2f}x")
        return "\n".join(lines)


def _resolve_protocol(token: str, base: RunConfig) -> tuple[str, RunConfig]:
    """Map a protocol token to (runner protocol name, per-protocol config).

    ``Srcr/auto`` is Srcr with Onoe-style autorate enabled — the extra
    baseline of Figure 4-6.  Plain tokens pass through with the shared
    config.
    """
    if token == "Srcr/auto":
        return "Srcr", replace(base, srcr_autorate=True)
    return token, base


def _abort_notes(results) -> list[str]:
    """Human-readable notes for every aborted flow in ``results``."""
    return [f"flow {result.source}->{result.destination}: {result.abort_reason}"
            for result in results if result.aborted]


def _throughput_cell(cell: ScenarioCell) -> CellResult:
    spec = cell.scenario
    topology = build_topology(spec.topology)
    pairs = build_pairs(spec.workload, topology, cell.seed)
    base = spec.run_config(cell.seed)
    series: dict[str, list[float]] = {}
    aborted: dict[str, list[str]] = {}
    for token in spec.protocols:
        protocol, config = _resolve_protocol(token, base)
        results = [run_single_flow(topology, protocol, source, destination, config=config)
                   for source, destination in pairs]
        series[token] = [result.throughput_pkts for result in results]
        notes = _abort_notes(results)
        if notes:
            aborted[token] = notes
    summary: dict[str, float] = {}
    for token, values in series.items():
        summary[f"{token}_median"] = summarize(values).median
    for token, notes in aborted.items():
        summary[f"{token}_aborted"] = float(len(notes))
    if "MORE" in series:
        for token, values in series.items():
            if token != "MORE":
                slug = token.lower().replace("/", "_")
                summary[f"more_over_{slug}_median_gain"] = median_gain(series["MORE"],
                                                                       values)
    meta: dict[str, Any] = {"pairs": [list(pair) for pair in pairs]}
    if aborted:
        meta["aborted_flows"] = aborted
    return CellResult(scenario=spec.name, mode=spec.mode, seed=cell.seed,
                      axes=dict(cell.axes), key=cell.key(), series=series,
                      summary=summary, meta=meta)


def _multiflow_cell(cell: ScenarioCell) -> CellResult:
    spec = cell.scenario
    topology = build_topology(spec.topology)
    flow_sets = build_flow_sets(spec.workload, topology, cell.seed)
    config = spec.run_config(cell.seed)
    series: dict[str, list[float]] = {}
    aborted: dict[str, list[str]] = {}
    for token in spec.protocols:
        protocol, protocol_config = _resolve_protocol(token, config)
        throughputs: list[float] = []
        notes: list[str] = []
        for flow_set in flow_sets:
            results = run_flows(topology, protocol, flow_set, config=protocol_config)
            throughputs.extend(result.throughput_pkts for result in results)
            notes.extend(_abort_notes(results))
        series[token] = throughputs
        if notes:
            aborted[token] = notes
    summary = {f"{token}_mean": summarize(values).mean for token, values in series.items()}
    for token, notes in aborted.items():
        summary[f"{token}_aborted"] = float(len(notes))
    flow_count = len(flow_sets[0]) if flow_sets else 0
    meta: dict[str, Any] = {"flow_count": flow_count, "set_count": len(flow_sets),
                            "flow_sets": [[list(pair) for pair in flow_set]
                                          for flow_set in flow_sets]}
    if aborted:
        meta["aborted_flows"] = aborted
    return CellResult(scenario=spec.name, mode=spec.mode, seed=cell.seed,
                      axes=dict(cell.axes), key=cell.key(), series=series,
                      summary=summary, meta=meta)


def _gap_cell(cell: ScenarioCell) -> CellResult:
    spec = cell.scenario
    topology = build_topology(spec.topology)
    pairs = build_pairs(spec.workload, topology, cell.seed)
    survey = gap_survey(topology, pairs)
    gaps = summarize_gaps(survey)
    series = {"gap": [result.gap for result in survey]}
    summary = {name: float(value) for name, value in gaps.items()}
    return CellResult(scenario=spec.name, mode=spec.mode, seed=cell.seed,
                      axes=dict(cell.axes), key=cell.key(), series=series,
                      summary=summary,
                      meta={"pairs": [list(pair) for pair in pairs]})


_MODE_RUNNERS = {
    "throughput": _throughput_cell,
    "multiflow": _multiflow_cell,
    "gap": _gap_cell,
}


def run_cell(cell: ScenarioCell) -> CellResult:
    """Execute one cell serially; fully deterministic given the cell."""
    try:
        runner = _MODE_RUNNERS[cell.scenario.mode]
    except KeyError:
        raise ValueError(f"unknown scenario mode {cell.scenario.mode!r}") from None
    return runner(cell)


def run_cell_dict(cell_data: dict[str, Any]) -> dict[str, Any]:
    """Dict-in/dict-out wrapper around :func:`run_cell` for worker processes."""
    return run_cell(ScenarioCell.from_dict(cell_data)).to_dict()
