"""Runtime liveness monitoring: stalls become one-screen reports, not hangs.

The one time a flow genuinely stranded (the PR 6 kilonode zero-credit-relay
pathology) the failure mode was a silent hang caught only by the
orchestrator's external cell timeout — a process killed from outside with
no forensics.  :class:`SimMonitor` is the opt-in antidote: attached to the
event loop, it checks liveness/safety invariants every ``interval``
simulated seconds and, on violation, raises a :class:`StallDiagnosis`
carrying everything needed to debug the stall in one screen — per-flow
last-progress times and rank/credit snapshots, the crashed node set, and
which invariant tripped.

Invariants checked per tick:

* **flow progress** — every incomplete flow must advance its progress
  fingerprint (delivered/duplicate counters plus destination decoder rank,
  source batch position, and queued backlog, probed duck-typed from the
  attached agents) at least once per ``stall_intervals`` check intervals;
* **no-event deadlock** — while flows are incomplete, events other than
  the monitor's own ticks must be flowing through the scheduler;
* **credit conservation** — MORE forwarder credits stay finite and never
  fall below the one-transmission debt the credit rule permits;
* **queue bounds** — per-node packet queues stay within a generous
  multiple of the total offered load (runaway retransmission guard).

The monitor is strictly observational: with ``monitor`` disabled no object
is constructed and no event is scheduled, so a monitored run differs from
an unmonitored one only by the tick events themselves (asserted by the
fault differential tests).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.simulator import Simulator

#: Queue-bound safety factor: total queued packets per node may not exceed
#: ``_QUEUE_BOUND_FACTOR * total offered packets`` (floored at
#: ``_QUEUE_BOUND_FLOOR`` so tiny flows are not flagged by startup bursts).
_QUEUE_BOUND_FACTOR = 4
_QUEUE_BOUND_FLOOR = 64

#: Forwarder credit may legitimately dip just below zero (the credit rule
#: decrements a full transmission after the threshold check); anything
#: below this is a conservation bug.
_CREDIT_FLOOR = -1.0 - 1e-9


class StallDiagnosis(RuntimeError):
    """A liveness/safety invariant violation, with the forensics attached.

    Attributes:
        reason: which invariant tripped, human-readable.
        now: simulated time of the failed check.
        flows: per-flow snapshot dicts (delivered/total counts, last
            progress time, destination rank, per-node credits, queued
            backlog) for every flow that had not finished.
        down_nodes: nodes crashed at diagnosis time (the usual suspects).
        ticks: how many monitor checks had run, including this one.
    """

    def __init__(self, reason: str, now: float,
                 flows: dict[int, dict[str, Any]],
                 down_nodes: frozenset[int], ticks: int) -> None:
        self.reason = reason
        self.now = now
        self.flows = flows
        self.down_nodes = down_nodes
        self.ticks = ticks
        super().__init__(self.render())

    def render(self) -> str:
        """The one-screen report (also the exception message)."""
        lines = [f"stall diagnosis at t={self.now:.3f}s "
                 f"(check #{self.ticks}): {self.reason}"]
        if self.down_nodes:
            lines.append(f"  down nodes: {sorted(self.down_nodes)}")
        for flow_id, info in sorted(self.flows.items()):
            lines.append(
                f"  flow {flow_id}: {info['delivered']}/{info['total']} pkts "
                f"delivered, last progress t={info['last_progress']:.3f}s, "
                f"destination rank {info['rank']}")
            credits = info.get("credits")
            if credits:
                shown = ", ".join(f"{node}:{credit:.2f}"
                                  for node, credit in sorted(credits.items()))
                lines.append(f"    forwarder credits: {shown}")
            if info.get("queued"):
                lines.append(f"    queued packets: {info['queued']}")
        return "\n".join(lines)


class SimMonitor:
    """Opt-in runtime invariant checker attached to the event loop.

    ``interval`` is the check period in simulated seconds;
    ``stall_intervals`` is how many consecutive no-progress intervals a
    flow survives before the progress invariant trips (1 = the baseline
    snapshot taken at install makes the very first tick able to flag a
    born-dead flow — the PR 6 regression contract).
    """

    def __init__(self, sim: "Simulator", interval: float = 1.0,
                 stall_intervals: int = 1) -> None:
        if interval <= 0.0 or not math.isfinite(interval):
            raise ValueError("monitor interval must be positive and finite")
        if stall_intervals < 1:
            raise ValueError("monitor stall_intervals must be >= 1")
        self.sim = sim
        self.interval = float(interval)
        self.stall_intervals = int(stall_intervals)
        self.ticks = 0
        self.installed = False
        self._fingerprints: dict[int, tuple] = {}
        self._last_progress: dict[int, float] = {}
        self._quiet: dict[int, int] = {}

    def install(self) -> None:
        """Take the baseline snapshot and schedule the first check.

        Called by :meth:`Simulator.run` once flows are registered — the
        baseline is what makes the first tick able to flag a flow that
        never progressed at all.
        """
        self.installed = True
        for flow_id, fingerprint in self._probe_fingerprints().items():
            self._fingerprints[flow_id] = fingerprint
            self._last_progress[flow_id] = self.sim.events.now
            self._quiet[flow_id] = 0
        self.sim.events.schedule_callback(self.interval, self._tick)

    # ------------------------------------------------------------------ #
    # Agent probing (duck-typed — no protocol imports)
    # ------------------------------------------------------------------ #

    def _probe_fingerprints(self) -> dict[int, tuple]:
        """Per-incomplete-flow progress fingerprint: any change = liveness."""
        stats = self.sim.stats
        fingerprints: dict[int, list] = {}
        for flow_id, record in stats.flows.items():
            if record.finished:
                continue
            fingerprints[flow_id] = [record.delivered_packets,
                                     record.delivered_batches,
                                     record.duplicate_packets]
        if not fingerprints:
            return {}
        for agent in self.sim._agents:
            if agent is None:
                continue
            destinations = getattr(agent, "destination_flows", None)
            if destinations:
                for flow_id, state in destinations.items():
                    if flow_id not in fingerprints:
                        continue
                    decoder = getattr(state, "decoder", None)
                    rank = decoder.rank if decoder is not None else 0
                    fingerprints[flow_id] += [state.current_batch,
                                              len(state.completed), rank]
            sources = getattr(agent, "source_flows", None)
            if sources:
                for flow_id, state in sources.items():
                    if flow_id not in fingerprints:
                        continue
                    fingerprints[flow_id] += [state.current_batch,
                                              len(state.acked)]
            queues = getattr(agent, "queues", None)
            if queues:
                for flow_id, queue in queues.items():
                    if flow_id in fingerprints:
                        fingerprints[flow_id].append(len(queue))
        return {flow_id: tuple(parts)
                for flow_id, parts in fingerprints.items()}

    def _snapshots(self) -> dict[int, dict[str, Any]]:
        """The forensic per-flow snapshots a diagnosis carries."""
        stats = self.sim.stats
        snapshots: dict[int, dict[str, Any]] = {}
        for flow_id, record in stats.flows.items():
            if record.finished:
                continue
            snapshots[flow_id] = {
                "delivered": record.delivered_packets,
                "total": record.total_packets,
                "last_progress": self._last_progress.get(
                    flow_id, record.start_time),
                "rank": 0,
                "credits": {},
                "queued": 0,
            }
        for node, agent in enumerate(self.sim._agents):
            if agent is None:
                continue
            forwarders = getattr(agent, "forward_flows", None)
            if forwarders:
                for flow_id, state in forwarders.items():
                    if flow_id in snapshots:
                        snapshots[flow_id]["credits"][node] = state.credit
            destinations = getattr(agent, "destination_flows", None)
            if destinations:
                for flow_id, state in destinations.items():
                    if flow_id in snapshots:
                        decoder = getattr(state, "decoder", None)
                        snapshots[flow_id]["rank"] = (
                            decoder.rank if decoder is not None else 0)
            queues = getattr(agent, "queues", None)
            if queues:
                for flow_id, queue in queues.items():
                    if flow_id in snapshots:
                        snapshots[flow_id]["queued"] += len(queue)
        return snapshots

    def _down_nodes(self) -> frozenset[int]:
        faults = getattr(self.sim, "faults", None)
        return faults.down_nodes() if faults is not None else frozenset()

    def _diagnose(self, reason: str) -> StallDiagnosis:
        return StallDiagnosis(reason, self.sim.events.now, self._snapshots(),
                              self._down_nodes(), self.ticks)

    # ------------------------------------------------------------------ #
    # The periodic check
    # ------------------------------------------------------------------ #

    def _tick(self) -> None:
        sim = self.sim
        stats = sim.stats
        self.ticks += 1
        if stats.all_flows_complete():
            return  # terminal: stop rescheduling, the run is about to end
        now = sim.events.now

        # No-event deadlock: this tick has already been popped, so an empty
        # queue means nothing else will ever run — yet flows are incomplete.
        # (`empty` tracks live, non-cancelled entries on both engines.)
        if sim.events.empty:
            raise self._diagnose(
                "event queue drained with incomplete flows (deadlock)")

        # Safety invariants: credit conservation and queue bounds.
        self._check_safety()

        # Flow progress: every incomplete flow must move its fingerprint.
        fingerprints = self._probe_fingerprints()
        stalled: list[int] = []
        for flow_id, fingerprint in fingerprints.items():
            if fingerprint != self._fingerprints.get(flow_id):
                self._fingerprints[flow_id] = fingerprint
                self._last_progress[flow_id] = now
                self._quiet[flow_id] = 0
                continue
            quiet = self._quiet.get(flow_id, 0) + 1
            self._quiet[flow_id] = quiet
            if quiet >= self.stall_intervals:
                stalled.append(flow_id)
        if stalled:
            raise self._diagnose(
                f"no progress on flow(s) {sorted(stalled)} for "
                f"{self.stall_intervals} check interval(s) (stall)")

        sim.events.schedule_callback(self.interval, self._tick)

    def _check_safety(self) -> None:
        total_offered = sum(record.total_packets
                            for record in self.sim.stats.flows.values())
        queue_bound = max(_QUEUE_BOUND_FLOOR,
                          _QUEUE_BOUND_FACTOR * total_offered)
        for node, agent in enumerate(self.sim._agents):
            if agent is None:
                continue
            forwarders = getattr(agent, "forward_flows", None)
            if forwarders:
                for flow_id, state in forwarders.items():
                    credit = state.credit
                    if not math.isfinite(credit) or credit < _CREDIT_FLOOR:
                        raise self._diagnose(
                            f"credit conservation violated at node {node} "
                            f"flow {flow_id}: credit={credit!r}")
            queues = getattr(agent, "queues", None)
            if queues:
                queued = sum(len(queue) for queue in queues.values())
                if queued > queue_bound:
                    raise self._diagnose(
                        f"queue bound exceeded at node {node}: {queued} "
                        f"packets queued (bound {queue_bound})")
