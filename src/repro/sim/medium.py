"""The shared broadcast medium: losses, collisions, capture, carrier sense.

The medium owns the per-link delivery probabilities (from the
:class:`~repro.topology.graph.Topology`) and decides, for every transmission,
which nodes receive it.  The model:

* **Independent losses** — each potential receiver flips a coin with the
  link delivery probability (the paper's model, Sections 3.2.1 and 5.3.1).
* **Half duplex** — a node that is transmitting during any part of a frame
  cannot receive it.
* **Collisions** — if another transmission overlaps in time and the
  interferer is audible at the receiver (delivery probability above the
  interference threshold), the reception is corrupted ...
* **Capture effect** — ... unless the wanted signal is sufficiently stronger
  than the interferer, in which case the frame survives with the configured
  capture probability (Section 4.2.3 credits capture for part of MORE's gain
  on short paths).
* **Carrier sense** — a node senses the medium busy if any ongoing
  transmission is audible above the sense threshold; this is what enables
  spatial reuse (distant transmitters do not block each other).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.frames import Frame
from repro.sim.radio import ChannelConfig
from repro.topology.graph import Topology


@dataclass
class Transmission:
    """An in-flight (or recently completed) frame transmission."""

    frame: Frame
    start: float
    end: float
    bitrate: int
    #: Filled in when the transmission completes: node ids that received it.
    receivers: list[int] = field(default_factory=list)

    def overlaps(self, other: "Transmission") -> bool:
        """True if the two transmissions are on the air at the same time."""
        return self.start < other.end and other.start < self.end


class WirelessMedium:
    """Shared-channel model deciding receptions, collisions and carrier sense."""

    def __init__(self, topology: Topology, channel: ChannelConfig,
                 rng: np.random.Generator) -> None:
        self.topology = topology
        self.channel = channel
        self.rng = rng
        self._delivery = topology.delivery_matrix()
        self._sense = self._build_sense_matrix(self._delivery, channel)
        self._active: list[Transmission] = []
        self._history: list[Transmission] = []
        # Statistics.
        self.transmissions = 0
        self.receptions = 0
        self.collisions = 0
        self.captures = 0

    @staticmethod
    def _build_sense_matrix(delivery: np.ndarray, channel: ChannelConfig) -> np.ndarray:
        """Which node pairs can carrier-sense each other.

        Real radios sense energy well below the level needed to decode a
        frame: the carrier-sense range is roughly twice the communication
        range.  With only a delivery-probability matrix available we model
        that as: ``i`` senses ``j`` if it can decode it at all
        (delivery above the sense threshold) **or** if both can deliver
        reasonably well to some common neighbour — i.e. they are within two
        "good hops" of each other, which is where their transmissions could
        actually collide.  Without this, every pair of forwarders beyond
        decode range becomes a hidden terminal, which grossly overstates
        collisions relative to a real 802.11 deployment.
        """
        audible = delivery > channel.sense_threshold
        common = (delivery >= channel.neighbor_sense_threshold) @ \
                 (delivery >= channel.neighbor_sense_threshold).T
        sense = audible | audible.T | (common > 0)
        np.fill_diagonal(sense, False)
        return sense

    # ------------------------------------------------------------------ #
    # Carrier sense
    # ------------------------------------------------------------------ #

    def can_sense(self, listener: int, transmitter: int) -> bool:
        """True if ``listener`` senses energy from ``transmitter``'s frames."""
        return bool(self._sense[transmitter, listener])

    def is_busy(self, node: int, now: float) -> bool:
        """Carrier-sense outcome at ``node``: True if any audible frame is in the air."""
        self._expire(now)
        for transmission in self._active:
            if transmission.end <= now:
                continue
            sender = transmission.frame.sender
            if sender == node:
                return True  # we are transmitting ourselves
            if self._sense[sender, node]:
                return True
        return False

    def busy_until(self, node: int, now: float) -> float:
        """Time at which the medium (as sensed by ``node``) becomes idle."""
        self._expire(now)
        latest = now
        for transmission in self._active:
            if transmission.end <= now:
                continue
            sender = transmission.frame.sender
            if sender == node or self._sense[sender, node]:
                latest = max(latest, transmission.end)
        return latest

    def node_is_transmitting(self, node: int, now: float) -> bool:
        """True if ``node`` has a frame on the air at time ``now``."""
        return any(t.frame.sender == node and t.start <= now < t.end for t in self._active)

    # ------------------------------------------------------------------ #
    # Transmission lifecycle
    # ------------------------------------------------------------------ #

    def begin(self, frame: Frame, now: float, airtime: float, bitrate: int) -> Transmission:
        """Register the start of a transmission; returns its record."""
        self._expire(now)
        transmission = Transmission(frame=frame, start=now, end=now + airtime, bitrate=bitrate)
        self._active.append(transmission)
        self.transmissions += 1
        return transmission

    def complete(self, transmission: Transmission, now: float) -> list[int]:
        """Resolve receptions when ``transmission`` ends.

        Returns the list of node ids that successfully received the frame.
        The interference check considers every transmission that overlapped
        this one at any point.
        """
        sender = transmission.frame.sender
        overlapping = [
            other for other in self._active + self._history
            if other is not transmission and other.overlaps(transmission)
        ]
        receivers: list[int] = []
        for node in range(self.topology.node_count):
            if node == sender:
                continue
            probability = self._delivery[sender, node]
            if probability <= 0.0:
                continue
            # Half duplex: a node transmitting during the frame cannot decode it.
            if any(other.frame.sender == node for other in overlapping):
                continue
            if self.rng.random() >= probability:
                continue  # channel loss
            if self._corrupted_by_interference(node, probability, overlapping,
                                               self_sender=sender):
                self.collisions += 1
                continue
            receivers.append(node)
            self.receptions += 1
        transmission.receivers = receivers
        if transmission in self._active:
            self._active.remove(transmission)
        self._history.append(transmission)
        self._prune_history(now)
        return receivers

    def _corrupted_by_interference(self, node: int, wanted_probability: float,
                                   overlapping: list[Transmission],
                                   self_sender: int | None = None) -> bool:
        """Decide whether concurrent transmissions corrupt the reception."""
        for other in overlapping:
            interferer = other.frame.sender
            if interferer == node:
                continue
            if other.frame.sender == self_sender:
                continue
            interference = self._delivery[interferer, node]
            if interference <= self.channel.interference_threshold:
                continue
            if wanted_probability - interference >= self.channel.capture_margin:
                if self.rng.random() < self.channel.capture_probability:
                    self.captures += 1
                    continue
            return True
        return False

    # ------------------------------------------------------------------ #
    # Housekeeping
    # ------------------------------------------------------------------ #

    def _expire(self, now: float) -> None:
        """Move finished transmissions that were never completed explicitly."""
        still_active = []
        for transmission in self._active:
            if transmission.end <= now and transmission.receivers:
                self._history.append(transmission)
            else:
                still_active.append(transmission)
        self._active = still_active

    def _prune_history(self, now: float, horizon: float = 0.1) -> None:
        """Forget completed transmissions older than ``horizon`` seconds."""
        self._history = [t for t in self._history if t.end >= now - horizon]
