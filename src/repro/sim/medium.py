"""The shared broadcast medium: losses, collisions, capture, carrier sense.

The medium decides, for every transmission, which nodes receive it.  Per-link
delivery probabilities come from a pluggable :class:`~repro.sim.channels.ChannelModel`
(static Bernoulli by default — the paper's model — or bursty / fading /
trace-driven variants).  The model:

* **Independent losses** — each potential receiver flips a coin with the
  link delivery probability (the paper's model, Sections 3.2.1 and 5.3.1);
  the probability itself may vary over time under non-static channel models.
* **Half duplex** — a node that is transmitting during any part of a frame
  cannot receive it.
* **Collisions** — if another transmission overlaps in time and the
  interferer is audible at the receiver (delivery probability above the
  interference threshold), the reception is corrupted ...
* **Capture effect** — ... unless the wanted signal is sufficiently stronger
  than the interferer, in which case the frame survives with the configured
  capture probability (Section 4.2.3 credits capture for part of MORE's gain
  on short paths).
* **Carrier sense** — a node senses the medium busy if any ongoing
  transmission is audible above the sense threshold; this is what enables
  spatial reuse (distant transmitters do not block each other).

Reception resolution is vectorized: one batched RNG draw over the eligible
receivers (in node order, so the stream is bit-identical to the original
per-node loop), a single delivery-row gather from the channel model, and a
vectorized interference mask.  Only frames where a *capture* draw could
occur fall back to the scalar loop, because capture draws interleave with
delivery draws in the RNG stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.channels import ChannelModel, StaticBernoulli
from repro.sim.frames import BROADCAST, Frame, FrameKind
from repro.sim.radio import ChannelConfig
from repro.topology.graph import Topology
from repro.topology.mobility import MobilityModel


@dataclass(slots=True)
class Transmission:
    """An in-flight (or recently completed) frame transmission."""

    frame: Frame
    start: float
    end: float
    bitrate: int
    #: Filled in when the transmission completes: node ids that received it.
    receivers: list[int] = field(default_factory=list)

    def overlaps(self, other: "Transmission") -> bool:
        """True if the two transmissions are on the air at the same time."""
        return self.start < other.end and other.start < self.end


class WirelessMedium:
    """Shared-channel model deciding receptions, collisions and carrier sense."""

    def __init__(self, topology: Topology, channel: ChannelConfig,
                 rng: np.random.Generator, model: ChannelModel | None = None,
                 vectorized: bool = True, fast: bool = True,
                 mobility: MobilityModel | None = None,
                 faults=None) -> None:
        self.topology = topology
        self.channel = channel
        self.rng = rng
        self.model = model if model is not None else StaticBernoulli()
        self.model.bind(topology)
        #: Fault injector (``None`` = fault-free, today's behaviour bit for
        #: bit).  When present, resolved receivers are filtered *after* the
        #: channel draws so the RNG stream is identical either way.
        self.faults = faults
        #: Dynamic-topology process (``None`` = static, today's behaviour
        #: bit for bit).  When present, every epoch boundary re-bases the
        #: channel model and invalidates the per-sender resolution caches.
        self.mobility = mobility
        self._dynamic = mobility is not None
        self._epoch = -1
        if self._dynamic:
            mobility.bind(topology)
        # Bound draw method: complete() runs once per frame.
        self._random = rng.random
        self._active: list[Transmission] = []
        self._history: list[Transmission] = []
        self.vectorized = vectorized
        #: Enables the interference-free static-channel resolution cache
        #: (disabled under ``SimConfig(engine="legacy")`` so the reference
        #: engine measures the original per-frame row/eligibility work).
        self.fast = fast
        self._static = type(self.model) is StaticBernoulli
        self._max_airtime = 0.0
        # One flag instead of three attribute probes per completed frame.
        self._fast_static = self.fast and self._static and self.vectorized
        if self._dynamic:
            # Adopt the epoch-0 realisation before any caches are built.
            self.model.update_base(mobility.delivery_at(0),
                                   mobility.positions_at(0))
            self._epoch = 0
        self._rebuild_channel_state()
        # Statistics.
        self.transmissions = 0
        self.receptions = 0
        self.collisions = 0
        self.captures = 0

    def _rebuild_channel_state(self) -> None:
        """(Re)derive every matrix/cache that depends on the channel base.

        Called once at construction and — under a dynamic topology — at
        every epoch boundary: this is the epoch-keyed invalidation of the
        per-sender eligible-row and single-interferer pair caches.
        """
        # Long-run average deliveries: carrier-sense audibility and
        # interference levels track mean signal energy, not the
        # instantaneous fade (for the static model this IS the topology
        # matrix, preserving the original behaviour bit for bit).
        self._delivery = self.model.mean_matrix()
        self._sense = self._build_sense_matrix(self._delivery, self.channel)
        # Plain-python sense rows: the per-transmission carrier-sense probes
        # in is_busy/busy_until are scalar lookups, where list indexing beats
        # numpy scalar indexing several-fold.
        self._sense_rows: list[list[bool]] = self._sense.tolist()
        self._row_indices: list[np.ndarray] = []
        self._row_probabilities: list[np.ndarray] = []
        if self._static:
            # Under a static channel the eligible-receiver set of every
            # sender never changes within an epoch: precompute the index
            # gather and the matching probability row once, leaving one
            # batched RNG draw plus one comparison per interference-free
            # frame.
            for sender in range(self.topology.node_count):
                row = self._delivery[sender]
                eligible = row > 0.0
                eligible[sender] = False
                indices = np.nonzero(eligible)[0]
                self._row_indices.append(indices)
                self._row_probabilities.append(row[indices])
        # (sender, interferer) -> (indices, probabilities, survivable,
        # capture_possible); lazily built single-interferer resolution
        # cache for the static channel (see _resolve_static_pair).
        self._pair_cache: dict[tuple[int, int], tuple] = {}

    # ------------------------------------------------------------------ #
    # Dynamic topology (mobility / link churn)
    # ------------------------------------------------------------------ #

    def _advance_epoch(self, now: float) -> None:
        """Step the mobility process forward; invalidate caches on change.

        Epochs only move forward: a frame that started in an older epoch
        resolves against the newest epoch the medium has seen (at most one
        frame airtime newer than its start), which keeps the per-sender
        caches single-versioned and the run deterministic.
        """
        epoch = self.mobility.epoch_of(now)
        if epoch <= self._epoch:
            return
        self._epoch = epoch
        self.model.update_base(self.mobility.delivery_at(epoch),
                               self.mobility.positions_at(epoch))
        self._rebuild_channel_state()

    def effective_topology(self, now: float) -> Topology:
        """The topology as it stands at ``now`` (positions + delivery).

        Static media return the bound topology itself; dynamic media build
        a snapshot of the current epoch's realisation — this is what the
        link-state refresh loop probes against.
        """
        if not self._dynamic:
            return self.topology
        epoch = self.mobility.epoch_of(now)
        delivery = self.mobility.delivery_at(epoch)
        coords = self.mobility.positions_at(epoch)
        if coords is None:
            positions = self.topology.node_positions()
        else:
            positions = [tuple(float(value) for value in row) for row in coords]
        names = [node.name for node in self.topology.nodes]
        return Topology(np.clip(delivery, 0.0, 1.0), positions=positions,
                        names=names)

    @staticmethod
    def _build_sense_matrix(delivery: np.ndarray, channel: ChannelConfig) -> np.ndarray:
        """Which node pairs can carrier-sense each other.

        Real radios sense energy well below the level needed to decode a
        frame: the carrier-sense range is roughly twice the communication
        range.  With only a delivery-probability matrix available we model
        that as: ``i`` senses ``j`` if it can decode it at all
        (delivery above the sense threshold) **or** if both can deliver
        reasonably well to some common neighbour — i.e. they are within two
        "good hops" of each other, which is where their transmissions could
        actually collide.  Without this, every pair of forwarders beyond
        decode range becomes a hidden terminal, which grossly overstates
        collisions relative to a real 802.11 deployment.
        """
        audible = delivery > channel.sense_threshold
        common = (delivery >= channel.neighbor_sense_threshold) @ \
                 (delivery >= channel.neighbor_sense_threshold).T
        sense = audible | audible.T | (common > 0)
        np.fill_diagonal(sense, False)
        return sense

    # ------------------------------------------------------------------ #
    # Carrier sense
    # ------------------------------------------------------------------ #

    def can_sense(self, listener: int, transmitter: int) -> bool:
        """True if ``listener`` senses energy from ``transmitter``'s frames."""
        return bool(self._sense[transmitter, listener])

    def is_busy(self, node: int, now: float) -> bool:
        """Carrier-sense outcome at ``node``: True if any audible frame is in the air."""
        self._expire(now)
        sense = self._sense_rows if self.fast else self._sense
        for transmission in self._active:
            if transmission.end <= now:
                continue
            sender = transmission.frame.sender
            if sender == node:
                return True  # we are transmitting ourselves
            if sense[sender][node]:
                return True
        return False

    def busy_until(self, node: int, now: float) -> float:
        """Time at which the medium (as sensed by ``node``) becomes idle."""
        self._expire(now)
        latest = now
        sense = self._sense_rows if self.fast else self._sense
        for transmission in self._active:
            if transmission.end <= now:
                continue
            sender = transmission.frame.sender
            if sender == node or sense[sender][node]:
                latest = max(latest, transmission.end)
        return latest

    def busy_horizon(self, node: int, now: float) -> float:
        """One-pass fusion of :meth:`is_busy` and :meth:`busy_until`.

        Returns ``now`` when the medium is idle as sensed by ``node``,
        otherwise the time the last audible transmission ends — saving the
        MAC a second scan (and a second expiry pass) per contention.
        """
        self._expire(now)
        latest = now
        sense_rows = self._sense_rows
        for transmission in self._active:
            end = transmission.end
            if end <= now:
                continue
            sender = transmission.frame.sender
            if (sender == node or sense_rows[sender][node]) and end > latest:
                latest = end
        return latest

    def node_is_transmitting(self, node: int, now: float) -> bool:
        """True if ``node`` has a frame on the air at time ``now``."""
        return any(t.frame.sender == node and t.start <= now < t.end for t in self._active)

    # ------------------------------------------------------------------ #
    # Transmission lifecycle
    # ------------------------------------------------------------------ #

    def begin(self, frame: Frame, now: float, airtime: float, bitrate: int) -> Transmission:
        """Register the start of a transmission; returns its record."""
        if self._dynamic:
            self._advance_epoch(now)
        self._expire(now)
        transmission = Transmission(frame=frame, start=now, end=now + airtime, bitrate=bitrate)
        self._active.append(transmission)
        self.transmissions += 1
        self._max_airtime = max(self._max_airtime, airtime)
        return transmission

    def complete(self, transmission: Transmission, now: float) -> list[int]:
        """Resolve receptions when ``transmission`` ends.

        Returns the list of node ids that successfully received the frame.
        The interference check considers every transmission that overlapped
        this one at any point.
        """
        # Dynamic topologies: no epoch advance here — begin() already
        # advanced to epoch_of(transmission.start) and epochs are
        # monotonic, so every frame resolves against the epoch state the
        # medium held when it went on the air (or newer, if a later frame
        # began meanwhile).
        sender = transmission.frame.sender
        prune = False
        if self.fast:
            # Gather overlapping transmissions without concatenating the
            # active and history lists (the order — active first, then
            # history — is load-bearing: capture draws consume RNG state in
            # list order), comparing the interval bounds inline.  The same
            # history scan notes whether anything has aged out, so the
            # prune pass only runs when it will remove something.
            start = transmission.start
            end = transmission.end
            horizon = self.channel.history_horizon
            if horizon < self._max_airtime:
                horizon = self._max_airtime
            cutoff = now - horizon
            overlapping: list[Transmission] = []
            for other in self._active:
                if other is not transmission \
                        and start < other.end and other.start < end:
                    overlapping.append(other)
            for other in self._history:
                other_end = other.end
                if other_end < cutoff:
                    prune = True
                elif other is not transmission \
                        and start < other_end and other.start < end:
                    overlapping.append(other)
        else:
            overlapping = [
                other for other in self._active + self._history
                if other is not transmission and other.overlaps(transmission)
            ]
        receivers = None
        if self._fast_static:
            if not overlapping:
                # Interference-free static-channel fast path (the
                # overwhelmingly common case): the eligible set and
                # probabilities are precomputed per sender, so one batched
                # draw — consuming the exact RNG stream of the general path
                # — resolves the frame.
                indices = self._row_indices[sender]
                draws = self._random(indices.size)
                receivers = indices[draws < self._row_probabilities[sender]].tolist()
                self.receptions += len(receivers)
            elif len(overlapping) == 1:
                other_sender = overlapping[0].frame.sender
                if other_sender != sender:
                    receivers = self._resolve_static_pair(sender, other_sender)
        if receivers is None:
            probabilities = self.model.delivery_row(sender, transmission.start,
                                                    transmission.end)
            if self.vectorized:
                receivers = self._resolve_vectorized(sender, probabilities,
                                                     overlapping)
            if receivers is None:
                receivers = self._resolve_scalar(sender, probabilities, overlapping)
        if self.faults is not None:
            kept = self.faults.filter_receivers(transmission.frame, receivers,
                                                now)
            if len(kept) != len(receivers):
                # Keep the receptions counter meaning "frames delivered to
                # a live radio", whichever resolve path counted them.
                self.receptions -= len(receivers) - len(kept)
                receivers = kept
        transmission.receivers = receivers
        if self.fast:
            try:
                self._active.remove(transmission)
            except ValueError:
                pass
            self._history.append(transmission)
            if prune:
                self._prune_history(now)
        else:
            if transmission in self._active:
                self._active.remove(transmission)
            self._history.append(transmission)
            self._prune_history(now)
        return receivers

    def _resolve_static_pair(self, sender: int, interferer: int) -> list[int] | None:
        """One-interferer resolution over the static channel, fully cached.

        The eligible set (minus the half-duplex interferer), its delivery
        probabilities, the per-receiver corruption mask and whether any
        receiver could see a capture draw are all pure functions of the
        (sender, interferer) pair under a static channel — computed once,
        leaving one batched RNG draw per frame.  Returns ``None`` when a
        capture draw could occur (the caller falls back to the general
        path, exactly like :meth:`_resolve_vectorized` does).
        """
        entry = self._pair_cache.get((sender, interferer))
        if entry is None:
            row = self._delivery[sender]
            eligible = row > 0.0
            eligible[sender] = False
            eligible[interferer] = False
            indices = np.nonzero(eligible)[0]
            probabilities = row[indices]
            levels = self._delivery[interferer][indices]
            audible = levels > self.channel.interference_threshold
            capture_possible = bool((audible & (probabilities - levels
                                                >= self.channel.capture_margin)).any())
            entry = (indices, probabilities, ~audible, capture_possible)
            self._pair_cache[(sender, interferer)] = entry
        indices, probabilities, survivable, capture_possible = entry
        if capture_possible:
            return None
        draws = self._random(indices.size)
        delivered = draws < probabilities
        survived = delivered & survivable
        self.collisions += int(delivered.sum()) - int(survived.sum())
        receivers = indices[survived].tolist()
        self.receptions += len(receivers)
        return receivers

    def _resolve_vectorized(self, sender: int, probabilities: np.ndarray,
                            overlapping: list[Transmission]) -> list[int] | None:
        """One-pass reception resolution: batched draws, vectorized masks.

        Consumes exactly one RNG draw per eligible receiver in node order —
        the same stream as :meth:`_resolve_scalar` — so results are
        bit-identical.  Returns ``None`` when a capture draw could interleave
        with the delivery draws (the only case the batched stream cannot
        reproduce); the caller then takes the scalar path.
        """
        eligible = probabilities > 0.0
        eligible[sender] = False
        if overlapping:
            # Half duplex: nodes with a frame of their own on the air
            # (including the sender's other frames) cannot decode this one.
            senders = np.array([other.frame.sender for other in overlapping],
                               dtype=np.intp)
            eligible[senders] = False
            interferers = senders[senders != sender]
            if interferers.size:
                # levels[m, node]: how audible interferer m is at each node.
                levels = self._delivery[interferers]
                audible = levels > self.channel.interference_threshold
                capture_possible = audible & (probabilities[None, :] - levels
                                              >= self.channel.capture_margin)
                if bool((capture_possible.any(axis=0) & eligible).any()):
                    return None  # capture draws would interleave: scalar path
                corrupted = audible.any(axis=0)
                indices = np.nonzero(eligible)[0]
                draws = self.rng.random(indices.size)
                delivered = draws < probabilities[indices]
                survived = delivered & ~corrupted[indices]
                self.collisions += int(delivered.sum()) - int(survived.sum())
                receivers = indices[survived].tolist()
                self.receptions += len(receivers)
                return receivers
        # Interference-free fast path (the overwhelmingly common case).
        indices = np.nonzero(eligible)[0]
        draws = self.rng.random(indices.size)
        receivers = indices[draws < probabilities[indices]].tolist()
        self.receptions += len(receivers)
        return receivers

    def _resolve_scalar(self, sender: int, probabilities: np.ndarray,
                        overlapping: list[Transmission]) -> list[int]:
        """The reference per-node loop (also the capture-draw fallback)."""
        receivers: list[int] = []
        for node in range(self.topology.node_count):
            if node == sender:
                continue
            probability = float(probabilities[node])
            if probability <= 0.0:
                continue
            # Half duplex: a node transmitting during the frame cannot decode it.
            if any(other.frame.sender == node for other in overlapping):
                continue
            if self.rng.random() >= probability:
                continue  # channel loss
            if self._corrupted_by_interference(node, probability, overlapping,
                                               self_sender=sender):
                self.collisions += 1
                continue
            receivers.append(node)
            self.receptions += 1
        return receivers

    def _corrupted_by_interference(self, node: int, wanted_probability: float,
                                   overlapping: list[Transmission],
                                   self_sender: int | None = None) -> bool:
        """Decide whether concurrent transmissions corrupt the reception."""
        for other in overlapping:
            interferer = other.frame.sender
            if interferer == node:
                continue
            if other.frame.sender == self_sender:
                continue
            interference = self._delivery[interferer, node]
            if interference <= self.channel.interference_threshold:
                continue
            if wanted_probability - interference >= self.channel.capture_margin:
                if self.rng.random() < self.channel.capture_probability:
                    self.captures += 1
                    continue
            return True
        return False

    # ------------------------------------------------------------------ #
    # Housekeeping
    # ------------------------------------------------------------------ #

    def _expire(self, now: float) -> None:
        """Move finished transmissions that were never completed explicitly."""
        active = self._active
        if self.fast:
            for transmission in active:
                if transmission.end <= now and transmission.receivers:
                    break
            else:
                return  # nothing to move (the common case): no list churn
        still_active = []
        for transmission in active:
            if transmission.end <= now and transmission.receivers:
                self._history.append(transmission)
            else:
                still_active.append(transmission)
        self._active = still_active

    #: Canonical reception-resolution benchmark workload, shared by
    #: ``benchmarks/test_vectorized_medium.py`` (the ≥ 3× perf-strict floor)
    #: and ``scripts/bench_baseline.py`` (the committed frames/s baseline) so
    #: both measure the same quantity: a ``random_geometric(node_count=
    #: BENCH_NODE_COUNT, area=BENCH_AREA, seed=BENCH_TOPOLOGY_SEED)`` mesh,
    #: medium RNG seed ``BENCH_RNG_SEED``, ``BENCH_FRAMES`` pumped frames.
    BENCH_NODE_COUNT = 50
    BENCH_AREA = 220.0
    BENCH_TOPOLOGY_SEED = 1
    BENCH_RNG_SEED = 3
    BENCH_FRAMES = 400

    def pump_broadcast_frames(self, frames: int = 400, airtime: float = 0.002,
                              spacing: float = 0.003,
                              size_bytes: int = 1500) -> list[list[int]]:
        """Drive ``frames`` back-to-back broadcasts from a rotating sender.

        The canonical reception-resolution measurement/differential harness:
        ``make bench-baseline`` and ``benchmarks/test_vectorized_medium.py``
        both time exactly this schedule, so the committed frames/s baseline
        and the asserted speedup floor measure the same quantity.  Returns
        one receiver list per frame (for equivalence checks).
        """
        outcomes = []
        clock = 0.0
        node_count = self.topology.node_count
        for index in range(frames):
            frame = Frame(sender=index % node_count, receiver=BROADCAST,
                          kind=FrameKind.DATA, flow_id=1, size_bytes=size_bytes)
            transmission = self.begin(frame, now=clock, airtime=airtime,
                                      bitrate=5_500_000)
            outcomes.append(self.complete(transmission, now=clock + airtime))
            clock += spacing
        return outcomes

    def _prune_history(self, now: float) -> None:
        """Forget completed transmissions that can no longer interfere.

        Any transmission still able to complete started no earlier than
        ``now - max_airtime``, so a history entry whose end precedes that
        can never overlap one: the horizon tracks the longest observed
        airtime (plus the configured floor) instead of the old hard-coded
        0.1 s, which both keeps the overlap scan short for ordinary frames
        and stops long frames at low bitrates from outliving the window.
        """
        history = self._history
        horizon = self.channel.history_horizon
        if horizon < self._max_airtime:
            horizon = self._max_airtime
        cutoff = now - horizon
        if self.fast:
            # Rebuild the list only when something actually falls out.
            for transmission in history:
                if transmission.end < cutoff:
                    self._history = [t for t in history if t.end >= cutoff]
                    return
        else:
            self._history = [t for t in history if t.end >= cutoff]
