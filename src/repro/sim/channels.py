"""Pluggable channel models: where per-frame delivery probabilities come from.

The paper's evaluation rests on realistic link behaviour: lossy, bursty,
time-varying Roofnet-style links are exactly what gives opportunistic
routing its edge over best-path routing.  This module trades the medium's
original hard-coded static Bernoulli matrix for a :class:`ChannelModel`
interface the :class:`~repro.sim.medium.WirelessMedium` queries once per
completed frame:

* :class:`StaticBernoulli` — the topology's delivery matrix, unchanged in
  time (the paper's model, Sections 3.2.1 and 5.3.1; bit-identical to the
  pre-refactor behaviour).
* :class:`GilbertElliott` — two-state bursty loss per directed link: a
  continuous-time good/bad Markov chain scales the nominal delivery
  probability, producing the correlated loss bursts measured on real
  802.11 meshes.
* :class:`DistanceFading` — log-distance path loss over the topology's
  node coordinates plus block-fading log-normal shadowing redrawn every
  coherence interval (the generator's static link model made
  time-varying).
* :class:`TraceDriven` — replay per-link delivery time series from JSON
  (Roofnet-style measurement traces), stepping through the trace as
  simulated time advances.

A :class:`ChannelSpec` is the declarative form (``kind`` + ``params``)
that rides inside :class:`~repro.scenarios.spec.ScenarioSpec` JSON, the
``repro run/sweep --channel`` CLI flag and sweepable ``channel.*`` axes;
:func:`build_channel_model` turns it into a live model.

Determinism: every model derives its randomness from the cell seed mixed
with a private stream key, via *counter-based* draws — SplitMix64 over
``(seed, link, draw-index)`` for Gilbert-Elliott,
``default_rng((seed, stream, block))`` per fading block for DistanceFading
— so channel randomness never perturbs the simulator's main generator (a
static-channel run is bit-identical with or without the subsystem) and a
fixed seed replays the exact same channel realisation regardless of how
the medium's queries interleave.  Back-to-back protocol runs at one seed
therefore compare against the *same* channel trajectory, exactly like the
paper's back-to-back testbed runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.rng import splitmix64 as _splitmix64
from repro.topology import generator as _propagation
from repro.topology.generator import margin_to_delivery, path_loss_margin_db
from repro.topology.graph import Topology

#: Stream key mixed with the cell seed so channel randomness is independent
#: of (and cannot perturb) the simulator's main RNG stream.
_CHANNEL_STREAM = 0xC8A77E1


@dataclass
class ChannelSpec:
    """Declarative channel-model description: ``kind`` plus its parameters.

    Round-trips through dicts/JSON inside a scenario spec.  ``params`` are
    keyword arguments of the model named by ``kind`` (see
    :data:`CHANNEL_MODELS`); an optional ``seed`` param pins the channel
    RNG stream independently of the cell seed.
    """

    kind: str = "static"
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def is_static(self) -> bool:
        """True if this spec describes the default (static Bernoulli) channel."""
        return self.kind == "static" and not self.params

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ChannelSpec":
        if "kind" not in data:
            raise ValueError("channel spec needs a 'kind' field")
        return cls(kind=data["kind"], params=dict(data.get("params", {})))


class ChannelModel:
    """Per-frame delivery probabilities for the broadcast medium.

    Subclasses implement :meth:`delivery_row`, the probability that one
    frame on the air during ``[start, end)`` is decoded by each node.  The
    medium calls :meth:`bind` once with the topology before any query.

    ``mean_matrix`` is the long-run average delivery matrix; the medium
    derives carrier-sense audibility and interference levels from it (sense
    range tracks average signal energy, not the instantaneous fade).
    """

    kind = "static"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.topology: Topology | None = None
        self._base: np.ndarray | None = None

    def bind(self, topology: Topology) -> None:
        """Attach the model to a topology; called by the medium once."""
        self.topology = topology
        self._base = topology.delivery_matrix()
        self._prepare()

    def _prepare(self) -> None:
        """Subclass hook: build per-link state after ``bind``."""

    def update_base(self, delivery: np.ndarray,
                    positions: np.ndarray | None = None) -> None:
        """Adopt a new nominal matrix mid-run (dynamic-topology hook).

        The medium calls this at every mobility epoch boundary with the
        epoch's effective delivery matrix and, for position-based mobility,
        the epoch's node coordinates.  The default keeps any per-link
        channel state (e.g. Gilbert-Elliott chains) running across the
        update — churn in nominal quality composes with burstiness.
        """
        self._base = np.asarray(delivery, dtype=float)

    def delivery_row(self, sender: int, start: float, end: float) -> np.ndarray:
        """Delivery probabilities from ``sender`` to every node for one frame.

        ``start``/``end`` are the frame's time on the air; time-varying
        models evaluate their state at ``start`` (the channel as the frame
        found it).  The returned array must not be mutated by the caller.
        """
        raise NotImplementedError

    def mean_matrix(self) -> np.ndarray:
        """Long-run average delivery matrix (sense / interference levels)."""
        assert self._base is not None, "bind() must be called first"
        return self._base.copy()


class StaticBernoulli(ChannelModel):
    """The paper's model: one static Bernoulli delivery matrix.

    Bit-identical to the pre-refactor medium — the delivery row is the
    topology matrix row and no channel randomness exists at all.
    """

    kind = "static"

    def delivery_row(self, sender: int, start: float, end: float) -> np.ndarray:
        return self._base[sender]


class GilbertElliott(ChannelModel):
    """Two-state bursty loss per directed link (Gilbert-Elliott).

    Every directed link runs an independent continuous-time Markov chain
    over {good, bad} with exponentially distributed holding times.  The
    instantaneous delivery probability is the nominal (topology) value
    scaled by ``good_scale`` or ``bad_scale``, so loss arrives in bursts
    whose lengths match ``mean_bad_time`` — the correlated-loss structure
    ExOR/MORE measurements report — while the long-run average stays near
    the nominal matrix.

    The k-th holding time of each link comes from a counter-based uniform
    (:func:`repro.rng.splitmix64` of ``(seed, link, k)``), so every link's
    whole
    trajectory is a pure function of the seed: the state at time ``t``
    never depends on how often — or in what interleaving with other
    senders' rows — the model was queried, which keeps back-to-back
    protocol runs at the same seed on the *same* channel realisation.

    Args:
        good_scale: delivery multiplier in the good state (default 1.0).
        bad_scale: delivery multiplier in the bad state (default 0.2).
        mean_good_time: mean sojourn in the good state, seconds.
        mean_bad_time: mean sojourn in the bad state, seconds.
        seed: channel RNG stream seed (defaults to the cell seed).
    """

    kind = "gilbert_elliott"

    def __init__(self, seed: int = 0, good_scale: float = 1.0,
                 bad_scale: float = 0.2, mean_good_time: float = 1.0,
                 mean_bad_time: float = 0.1) -> None:
        super().__init__(seed)
        if mean_good_time <= 0 or mean_bad_time <= 0:
            raise ValueError("state sojourn times must be positive")
        if not (0.0 <= bad_scale <= good_scale):
            raise ValueError("need 0 <= bad_scale <= good_scale")
        self.good_scale = float(good_scale)
        self.bad_scale = float(bad_scale)
        self.mean_good_time = float(mean_good_time)
        self.mean_bad_time = float(mean_bad_time)

    def _uniform(self, links: np.ndarray, draws: np.ndarray) -> np.ndarray:
        """Counter-based uniforms in (0, 1] for the given (link, draw) pairs."""
        key = np.uint64(((self.seed ^ _CHANNEL_STREAM) * 0x9E3779B97F4A7C15)
                        & 0xFFFFFFFFFFFFFFFF)
        mixed = _splitmix64(_splitmix64(links.astype(np.uint64) + key)
                            + draws.astype(np.uint64))
        # Map to (0, 1]: never 0, so log() below stays finite.
        return (mixed >> np.uint64(11)).astype(np.float64) * 2.0 ** -53 + 2.0 ** -54

    def _prepare(self) -> None:
        count = self._base.shape[0]
        grid_i, grid_j = np.meshgrid(np.arange(count), np.arange(count),
                                     indexing="ij")
        self._link_ids = (grid_i * count + grid_j).astype(np.uint64)
        self._draws = np.zeros((count, count), dtype=np.uint64)
        # Stationary initial state: P(good) = Tg / (Tg + Tb) per link
        # (draw 0 of every link decides it).
        p_good = self.mean_good_time / (self.mean_good_time + self.mean_bad_time)
        self._good = self._uniform(self._link_ids, self._draws) < p_good
        self._draws += 1
        holding = np.where(self._good, self.mean_good_time, self.mean_bad_time)
        self._next_flip = -holding * np.log(
            self._uniform(self._link_ids, self._draws))
        self._draws += 1

    def _advance_row(self, sender: int, now: float) -> None:
        """Advance the chains of ``sender``'s outgoing links to time ``now``.

        Flip by flip, vectorised over the links that lag; each flip's
        holding time is indexed by the link's own draw counter, so the
        result depends only on (seed, now).
        """
        state = self._good[sender]
        flips = self._next_flip[sender]
        draws = self._draws[sender]
        links = self._link_ids[sender]
        lagging = np.nonzero(flips <= now)[0]
        while lagging.size:
            state[lagging] = ~state[lagging]
            holding = np.where(state[lagging], self.mean_good_time,
                               self.mean_bad_time)
            flips[lagging] += -holding * np.log(
                self._uniform(links[lagging], draws[lagging]))
            draws[lagging] += 1
            lagging = lagging[flips[lagging] <= now]

    def delivery_row(self, sender: int, start: float, end: float) -> np.ndarray:
        self._advance_row(sender, start)
        scale = np.where(self._good[sender], self.good_scale, self.bad_scale)
        return np.clip(self._base[sender] * scale, 0.0, 1.0)

    def mean_matrix(self) -> np.ndarray:
        """Stationary-average delivery: nominal scaled by the state mix.

        Each link spends ``Tg/(Tg+Tb)`` of its time good, the rest bad, so
        the long-run mean the medium's sense/interference levels should
        track is the nominal matrix scaled accordingly.
        """
        total = self.mean_good_time + self.mean_bad_time
        scale = (self.mean_good_time * self.good_scale
                 + self.mean_bad_time * self.bad_scale) / total
        return np.clip(self._base * scale, 0.0, 1.0)


class DistanceFading(ChannelModel):
    """Log-distance path loss + block-fading shadowing over node coordinates.

    The SNR margin of each directed link comes from
    :func:`repro.topology.generator.path_loss_margin_db` — the *same*
    propagation formula (and default constants) the topology generators use
    for their static matrices, so fading over a generated mesh is
    consistent with its nominal matrix — perturbed by log-normal shadowing
    redrawn every ``coherence_time`` seconds, with
    :func:`repro.topology.generator.margin_to_delivery` mapping the margin
    to a frame delivery probability.  Within one coherence block the
    channel is constant; across blocks it fades independently — the
    textbook block-fading abstraction.

    Each block's shadowing field is a pure function of ``(seed, block)``,
    so a replay at the same seed reproduces the exact same fades no matter
    how the medium interleaves its queries.

    Requires the topology to carry node positions (grids, the indoor
    testbed and random-geometric meshes all do).

    Args:
        coherence_time: seconds per fading block.
        reference_distance: distance (m) of the reference SNR.
        path_loss_exponent: log-distance slope.
        snr_at_reference_db: SNR margin at the reference distance.
        shadowing_sigma_db: shadowing standard deviation in dB.
        logistic_scale: dB-to-probability logistic slope.
        max_delivery: cap on any link's delivery probability.
        seed: channel RNG stream seed (defaults to the cell seed).
    """

    kind = "distance_fading"

    def __init__(self, seed: int = 0, coherence_time: float = 1.0,
                 reference_distance: float = _propagation._REFERENCE_DISTANCE,
                 path_loss_exponent: float = _propagation._PATH_LOSS_EXPONENT,
                 snr_at_reference_db: float = _propagation._SNR_AT_REFERENCE_DB,
                 shadowing_sigma_db: float = _propagation._SHADOWING_SIGMA_DB,
                 logistic_scale: float = _propagation._DELIVERY_LOGISTIC_SCALE,
                 max_delivery: float = _propagation._MAX_DELIVERY) -> None:
        super().__init__(seed)
        if coherence_time <= 0:
            raise ValueError("coherence_time must be positive")
        self.coherence_time = float(coherence_time)
        self.reference_distance = float(reference_distance)
        self.path_loss_exponent = float(path_loss_exponent)
        self.snr_at_reference_db = float(snr_at_reference_db)
        self.shadowing_sigma_db = float(shadowing_sigma_db)
        self.logistic_scale = float(logistic_scale)
        self.max_delivery = float(max_delivery)

    def _prepare(self) -> None:
        positions = [node.position for node in self.topology.nodes]
        if any(position is None or len(position) < 2 for position in positions):
            raise ValueError(
                "distance_fading needs node coordinates; this topology has none "
                "(use a grid / indoor_testbed / random_geometric topology)")
        count = len(positions)
        coords = np.zeros((count, 3))
        for index, position in enumerate(positions):
            coords[index, :len(position)] = position[:3]
        self._set_coordinates(coords)

    def _set_coordinates(self, coords: np.ndarray) -> None:
        """(Re)derive the static margins from node coordinates."""
        deltas = coords[:, None, :] - coords[None, :, :]
        distance = np.sqrt((deltas ** 2).sum(axis=2))
        self._margin0 = path_loss_margin_db(
            distance, reference_distance=self.reference_distance,
            path_loss_exponent=self.path_loss_exponent,
            snr_at_reference_db=self.snr_at_reference_db)
        np.fill_diagonal(self._margin0, -np.inf)
        self._block = -1
        self._matrix = np.zeros_like(self._margin0)

    def update_base(self, delivery: np.ndarray,
                    positions: np.ndarray | None = None) -> None:
        """Mobility hook: fading reads the epoch's node positions.

        The shadowing of block k stays a pure function of ``(seed, k)``;
        only the distance-derived margins move with the nodes.
        """
        super().update_base(delivery, positions)
        if positions is None:
            raise ValueError("distance_fading under mobility needs a "
                             "position-based mobility model")
        self._set_coordinates(np.asarray(positions, dtype=float))

    def _margin_to_delivery(self, margin_db: np.ndarray) -> np.ndarray:
        return margin_to_delivery(margin_db, logistic_scale=self.logistic_scale,
                                  max_delivery=self.max_delivery)

    def _matrix_at(self, now: float) -> np.ndarray:
        block = int(now / self.coherence_time)
        if block != self._block:
            # The fade of block k depends only on (seed, k): replays agree
            # even when the query pattern differs.
            rng = np.random.default_rng((self.seed, _CHANNEL_STREAM, block))
            shadowing = rng.normal(0.0, self.shadowing_sigma_db,
                                   self._margin0.shape)
            self._matrix = self._margin_to_delivery(self._margin0 + shadowing)
            self._block = block
        return self._matrix

    def delivery_row(self, sender: int, start: float, end: float) -> np.ndarray:
        return self._matrix_at(start)[sender]

    def mean_matrix(self) -> np.ndarray:
        """The zero-shadowing (median-fade) delivery matrix."""
        return self._margin_to_delivery(self._margin0.copy())


class TraceDriven(ChannelModel):
    """Replay per-link delivery time series (Roofnet-style traces).

    The trace is a mapping from directed links (``"i-j"`` keys) to lists of
    delivery probabilities, sampled every ``interval`` seconds.  Simulated
    time indexes into the series (cycling past the end when ``wrap`` is
    true, clamping to the last sample otherwise); links absent from the
    trace keep their nominal topology value throughout.

    The trace comes inline via ``series`` (JSON-roundtrips inside a
    scenario spec) or from a JSON file via ``path`` holding
    ``{"interval": ..., "series": {"0-1": [...], ...}}``.

    Args:
        series: ``{"i-j": [p0, p1, ...]}`` per-link delivery series.
        path: JSON trace file to load (merged under any inline ``series``).
        interval: seconds per trace sample.
        wrap: cycle the trace (true) or hold the last sample (false).
        seed: unused (traces are deterministic); accepted for uniformity.
    """

    kind = "trace"

    def __init__(self, seed: int = 0, series: dict[str, list[float]] | None = None,
                 path: str | None = None, interval: float = 1.0,
                 wrap: bool = True) -> None:
        super().__init__(seed)
        if interval <= 0:
            raise ValueError("trace interval must be positive")
        self.interval = float(interval)
        self.wrap = bool(wrap)
        self.series = dict(series or {})
        if path is not None:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
            self.interval = float(data.get("interval", self.interval))
            for link, values in data.get("series", {}).items():
                self.series.setdefault(link, values)
        if not self.series:
            raise ValueError("trace channel needs a 'series' mapping or a 'path'")

    @staticmethod
    def _parse_link(key: str, count: int) -> tuple[int, int]:
        try:
            sender_text, _, receiver_text = key.partition("-")
            sender, receiver = int(sender_text), int(receiver_text)
        except ValueError:
            raise ValueError(f"trace link key {key!r} is not of the form 'i-j'") \
                from None
        if not (0 <= sender < count and 0 <= receiver < count) or sender == receiver:
            raise ValueError(f"trace link {key!r} is out of range for "
                             f"{count} nodes")
        return sender, receiver

    def _prepare(self) -> None:
        count = self._base.shape[0]
        empty = sorted(key for key, values in self.series.items() if not len(values))
        if empty:
            raise ValueError(f"trace series must contain at least one sample; "
                             f"empty link(s): {empty}")
        steps = max(len(values) for values in self.series.values())
        # One delivery matrix per trace step; untraced links hold the
        # nominal value, short series hold their last sample.
        self._stack = np.repeat(self._base[None, :, :], steps, axis=0)
        self._traced = np.zeros((count, count), dtype=bool)
        for key, values in self.series.items():
            sender, receiver = self._parse_link(key, count)
            samples = np.asarray(list(values), dtype=float)
            if np.any((samples < 0) | (samples > 1)):
                raise ValueError(f"trace link {key!r} has probabilities "
                                 "outside [0, 1]")
            padded = np.full(steps, samples[-1])
            padded[:samples.size] = samples
            self._stack[:, sender, receiver] = padded
            self._traced[sender, receiver] = True

    def update_base(self, delivery: np.ndarray,
                    positions: np.ndarray | None = None) -> None:
        """Mobility hook: untraced links follow the churned topology while
        traced links keep replaying their series — only the untraced stack
        entries are rewritten (no per-epoch stack rebuild)."""
        super().update_base(delivery, positions)
        untraced = ~self._traced
        self._stack[:, untraced] = self._base[untraced]

    def _index_at(self, now: float) -> int:
        index = int(now / self.interval)
        steps = self._stack.shape[0]
        return index % steps if self.wrap else min(index, steps - 1)

    def delivery_row(self, sender: int, start: float, end: float) -> np.ndarray:
        return self._stack[self._index_at(start), sender]

    def mean_matrix(self) -> np.ndarray:
        """Long-run average of the trace (nominal values for untraced links).

        A wrapping trace cycles forever, so its long-run mean is the
        per-step average; a clamped (``wrap=False``) trace spends all time
        past the end at its final sample, so that sample *is* the long-run
        mean.
        """
        if not self.wrap:
            return self._stack[-1].copy()
        return self._stack.mean(axis=0)


#: Channel models addressable from a :class:`ChannelSpec`.
CHANNEL_MODELS: dict[str, type[ChannelModel]] = {
    StaticBernoulli.kind: StaticBernoulli,
    GilbertElliott.kind: GilbertElliott,
    DistanceFading.kind: DistanceFading,
    TraceDriven.kind: TraceDriven,
}


def build_channel_model(spec: ChannelSpec | None, seed: int = 0) -> ChannelModel:
    """Instantiate the model a spec describes (``None`` means static).

    ``seed`` (normally the cell seed) drives the model's private RNG stream
    unless the spec params pin their own ``seed`` — the same convention the
    workload builders use.
    """
    if spec is None:
        return StaticBernoulli()
    try:
        cls = CHANNEL_MODELS[spec.kind]
    except KeyError:
        raise ValueError(f"unknown channel kind {spec.kind!r}; expected one of "
                         f"{sorted(CHANNEL_MODELS)}") from None
    params = dict(spec.params)
    params.setdefault("seed", int(seed))
    try:
        return cls(**params)
    except TypeError as error:
        # Surface bad `channel.<param>` overrides as a one-line user error
        # (the CLI turns ValueError into `repro: error: ...`).
        raise ValueError(f"bad parameter for channel {spec.kind!r}: {error}") \
            from None
