"""Frame abstraction exchanged over the simulated medium.

A :class:`Frame` is what the MAC hands to the medium: a protocol payload
plus addressing and size information.  Protocol payloads are opaque to the
MAC and the medium; the receiving node's protocol agent interprets them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

#: Address meaning "all nodes in radio range" (802.11 broadcast).
BROADCAST = -1

_frame_counter = itertools.count()


class FrameKind(Enum):
    """Coarse frame classification used for statistics and priorities."""

    DATA = "data"
    BATCH_ACK = "batch_ack"
    ROUTING = "routing"
    CONTROL = "control"


@dataclass(slots=True)
class Frame:
    """A link-layer frame.

    Attributes:
        sender: transmitting node id.
        receiver: intended MAC receiver, or :data:`BROADCAST`.
        kind: frame classification.
        flow_id: flow the frame belongs to (-1 for control traffic).
        size_bytes: payload size including protocol headers (the MAC adds
            its own overhead when computing air time).
        payload: protocol-specific object (opaque to MAC/medium).
        priority: higher values are served first by the MAC queue; MORE
            gives batch ACKs priority over data (Section 3.2.2).
        frame_id: unique id for tracing.
        mac_attempts: filled in by the MAC after the frame is done — the
            number of transmission attempts it took (1 for broadcast).
    """

    sender: int
    receiver: int
    kind: FrameKind
    flow_id: int
    size_bytes: int
    payload: Any = None
    priority: int = 0
    frame_id: int = field(default_factory=lambda: next(_frame_counter))
    mac_attempts: int = 0

    @property
    def is_broadcast(self) -> bool:
        """True if the frame is MAC-broadcast (no link-layer ACK/retry)."""
        return self.receiver == BROADCAST

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        target = "bcast" if self.is_broadcast else str(self.receiver)
        return (
            f"Frame#{self.frame_id}({self.kind.value} {self.sender}->{target} "
            f"flow={self.flow_id} {self.size_bytes}B)"
        )
