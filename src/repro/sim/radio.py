"""802.11b PHY/MAC timing parameters and frame air-time computation.

The evaluation runs over 802.11b at a fixed bit-rate of 5.5 Mb/s (11 Mb/s
for the autorate comparison), with long-preamble DSSS timing.  These
constants determine how long a frame occupies the medium, which in turn sets
the absolute throughput scale of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.channels import ChannelSpec
from repro.sim.faults import FaultSpec
from repro.topology.mobility import MobilitySpec

#: 802.11b data rates in bits per second.
RATE_1MBPS = 1_000_000
RATE_2MBPS = 2_000_000
RATE_5_5MBPS = 5_500_000
RATE_11MBPS = 11_000_000

#: All supported 802.11b rates, ascending.
SUPPORTED_RATES = (RATE_1MBPS, RATE_2MBPS, RATE_5_5MBPS, RATE_11MBPS)


@dataclass(frozen=True)
class PhyConfig:
    """Physical and MAC layer timing configuration (802.11b DSSS defaults).

    Attributes:
        bitrate: data bit-rate in b/s.
        preamble_time: PLCP preamble + header duration (long preamble).
        slot_time: backoff slot duration.
        sifs: short inter-frame space.
        difs: DCF inter-frame space.
        cw_min: minimum contention window (slots).
        cw_max: maximum contention window (slots).
        mac_overhead_bytes: MAC header + FCS bytes added to every frame.
        ack_bytes: size of a MAC-level ACK frame.
        ack_bitrate: rate at which MAC ACKs are sent.
        retry_limit: maximum transmission attempts for unicast frames.
    """

    bitrate: int = RATE_5_5MBPS
    preamble_time: float = 192e-6
    slot_time: float = 20e-6
    sifs: float = 10e-6
    difs: float = 50e-6
    cw_min: int = 31
    cw_max: int = 1023
    mac_overhead_bytes: int = 34
    ack_bytes: int = 14
    ack_bitrate: int = RATE_1MBPS
    retry_limit: int = 7

    def frame_airtime(self, payload_bytes: int, bitrate: int | None = None) -> float:
        """Time (s) a data frame of ``payload_bytes`` occupies the medium."""
        rate = bitrate if bitrate is not None else self.bitrate
        if rate <= 0:
            raise ValueError("bitrate must be positive")
        bits = (payload_bytes + self.mac_overhead_bytes) * 8
        return self.preamble_time + bits / rate

    def ack_airtime(self) -> float:
        """Time (s) a MAC-level ACK occupies the medium."""
        return self.preamble_time + self.ack_bytes * 8 / self.ack_bitrate

    def backoff_time(self, slots: int) -> float:
        """Duration of ``slots`` backoff slots."""
        return slots * self.slot_time

    def contention_window(self, attempt: int) -> int:
        """Contention window for the given (0-based) retry attempt."""
        window = (self.cw_min + 1) * (2 ** attempt) - 1
        return min(window, self.cw_max)


@dataclass(frozen=True)
class ChannelConfig:
    """Reception / interference model parameters.

    Attributes:
        sense_threshold: minimum delivery probability at which a node can
            directly carrier-sense an ongoing transmission (carrier sense is
            more sensitive than successful decoding).
        neighbor_sense_threshold: two nodes that can each deliver to a
            common neighbour with at least this probability are considered
            within carrier-sense range of each other even when they cannot
            decode each other's frames (the sense range of real radios is
            roughly twice the decode range).
        interference_threshold: minimum delivery probability at which a
            concurrent transmission corrupts a reception at a node.
        capture_margin: if the wanted frame's delivery probability exceeds
            the interferer's by at least this margin, the capture effect may
            save the reception (Section 4.2.3 discusses capture).
        capture_probability: probability that capture succeeds when the
            margin condition holds.
        history_horizon: floor (seconds) on how long a completed
            transmission stays in the medium's interference history.  The
            effective horizon is ``max(history_horizon, longest observed
            airtime)``, so long frames at low bitrates never outlive the
            window; entries older than one maximum airtime provably cannot
            overlap any transmission that can still complete, hence the
            default floor of 0.
    """

    sense_threshold: float = 0.10
    neighbor_sense_threshold: float = 0.20
    interference_threshold: float = 0.10
    capture_margin: float = 0.35
    capture_probability: float = 0.7
    history_horizon: float = 0.0


#: Engine modes understood by :class:`SimConfig` / the simulator: ``fast``
#: is the tuple-heap scheduler plus all hot-path fast paths, ``legacy`` the
#: original implementations kept for differential tests and benchmarking.
ENGINE_MODES = ("fast", "legacy")


@dataclass
class SimConfig:
    """Top-level simulator configuration.

    ``channel_model`` selects the channel model feeding the medium's
    per-frame delivery probabilities (see :mod:`repro.sim.channels`);
    ``None`` is the static Bernoulli matrix — the paper's model and the
    pre-refactor behaviour, bit for bit.  ``vectorized_medium`` exists for
    differential testing of the batched reception path against the
    reference per-node loop.  ``engine`` likewise exists for differential
    testing and benchmarking of the event-engine hot paths: ``legacy``
    selects the original scheduler plus the original (allocation-heavy)
    MAC/medium/agent code paths; results are bit-identical either way, the
    ``fast`` engine is just ≥2x quicker on protocol workloads (see
    docs/performance.md).
    """

    phy: PhyConfig = field(default_factory=PhyConfig)
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    seed: int = 0
    #: Maximum simulated seconds for a single flow transfer before giving up.
    max_duration: float = 300.0
    #: Channel-model spec (``None`` = static Bernoulli delivery matrix).
    channel_model: ChannelSpec | None = None
    #: Mobility / link-churn spec (``None`` = static topology — today's
    #: behaviour, bit for bit; see :mod:`repro.topology.mobility`).
    mobility: MobilitySpec | None = None
    #: Resolve receptions with the vectorized fast path (scalar reference
    #: loop when False; results are bit-identical either way).
    vectorized_medium: bool = True
    #: Event-engine / hot-path selection (``fast`` or ``legacy``; results
    #: are bit-identical either way).
    engine: str = "fast"
    #: Fault-process spec (``None`` = fault-free — today's behaviour, bit
    #: for bit; see :mod:`repro.sim.faults`).
    faults: FaultSpec | None = None
    #: Attach a :class:`~repro.sim.monitor.SimMonitor` liveness checker to
    #: the event loop (off by default: a monitored run adds tick events).
    monitor: bool = False
    #: Monitor check period in simulated seconds.
    monitor_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_MODES:
            raise ValueError(f"unknown engine {self.engine!r}; expected one of "
                             f"{ENGINE_MODES}")
        if self.monitor_interval <= 0.0:
            raise ValueError("monitor_interval must be positive")
