"""Onoe-style automatic bit-rate selection (Section 4.4).

The MadWifi driver's Onoe algorithm is credit based and deliberately
conservative: it observes the recent success/retry history toward a
neighbour over fixed periods and

* moves *down* a rate quickly when more than half the frames needed retries
  or many frames were lost outright,
* accumulates one credit per period with few retries, and only moves *up*
  after ten consecutive good periods,
* falls back after an upward move that immediately performs badly.

The paper compares Srcr with this autorate against MORE/ExOR at a fixed
11 Mb/s and observes that autorate often lingers at low rates on lossy
links, consuming most of the air time (Section 4.4).  This implementation
reproduces that qualitative behaviour; thresholds follow the published Onoe
description.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.radio import SUPPORTED_RATES


@dataclass
class _NeighborRateState:
    """Per-neighbour Onoe bookkeeping."""

    rate_index: int
    credits: int = 0
    frames: int = 0
    retries: int = 0
    drops: int = 0
    #: Start of the neighbour's current observation window, anchored at its
    #: first recorded frame (``None`` until then).
    window_start: float | None = None


@dataclass
class OnoeRateController:
    """Credit-based rate selection, one instance per sending node.

    Each neighbour's observation window is anchored at its own first
    recorded frame and evaluated on its own period.  (A single shared
    window anchored at t=0 let the first window close immediately and had
    an idle neighbour's handful of frames judged against a window opened —
    and closed — by some *other* neighbour's traffic.)

    Args:
        period: observation window in seconds.
        credits_to_raise: consecutive good periods needed before stepping up.
        initial_rate: starting bit-rate (defaults to the highest).
    """

    period: float = 1.0
    credits_to_raise: int = 10
    initial_rate: int = SUPPORTED_RATES[-1]
    _neighbors: dict[int, _NeighborRateState] = field(default_factory=dict)

    def _state(self, neighbor: int) -> _NeighborRateState:
        if neighbor not in self._neighbors:
            self._neighbors[neighbor] = _NeighborRateState(
                rate_index=SUPPORTED_RATES.index(self.initial_rate)
            )
        return self._neighbors[neighbor]

    def current_rate(self, neighbor: int) -> int:
        """Bit-rate currently selected toward ``neighbor``."""
        return SUPPORTED_RATES[self._state(neighbor).rate_index]

    def record_result(self, neighbor: int, success: bool, retries: int, now: float) -> None:
        """Record the outcome of one unicast frame toward ``neighbor``."""
        state = self._state(neighbor)
        if state.window_start is None:
            state.window_start = now
        state.frames += 1
        state.retries += retries
        if not success:
            state.drops += 1
        if now - state.window_start >= self.period:
            self._evaluate(state)
            state.window_start = now

    def _evaluate(self, state: _NeighborRateState) -> None:
        """End-of-period evaluation for one neighbour (Onoe decision rules)."""
        if state.frames == 0:
            return
        avg_retries = state.retries / state.frames
        drop_fraction = state.drops / state.frames
        if drop_fraction > 0.5 or avg_retries >= 2.0:
            # Heavy loss: step down immediately and reset credits.
            state.rate_index = max(0, state.rate_index - 1)
            state.credits = 0
        elif avg_retries >= 1.0:
            # Mediocre period: lose a credit but hold the rate.
            state.credits = max(0, state.credits - 1)
        else:
            state.credits += 1
            if state.credits >= self.credits_to_raise:
                state.rate_index = min(len(SUPPORTED_RATES) - 1, state.rate_index + 1)
                state.credits = 0
        state.frames = 0
        state.retries = 0
        state.drops = 0
