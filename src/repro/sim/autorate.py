"""Onoe-style automatic bit-rate selection (Section 4.4).

The MadWifi driver's Onoe algorithm is credit based and deliberately
conservative: it observes the recent success/retry history toward a
neighbour over fixed periods and

* moves *down* a rate quickly when more than half the frames needed retries
  or many frames were lost outright,
* accumulates one credit per period with few retries, and only moves *up*
  after ten consecutive good periods,
* falls back after an upward move that immediately performs badly.

The paper compares Srcr with this autorate against MORE/ExOR at a fixed
11 Mb/s and observes that autorate often lingers at low rates on lossy
links, consuming most of the air time (Section 4.4).  This implementation
reproduces that qualitative behaviour; thresholds follow the published Onoe
description.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.radio import SUPPORTED_RATES


@dataclass
class _NeighborRateState:
    """Per-neighbour Onoe bookkeeping."""

    rate_index: int
    credits: int = 0
    frames: int = 0
    retries: int = 0
    drops: int = 0


@dataclass
class OnoeRateController:
    """Credit-based rate selection, one instance per sending node.

    Args:
        period: observation window in seconds.
        credits_to_raise: consecutive good periods needed before stepping up.
        initial_rate: starting bit-rate (defaults to the highest).
    """

    period: float = 1.0
    credits_to_raise: int = 10
    initial_rate: int = SUPPORTED_RATES[-1]
    _neighbors: dict[int, _NeighborRateState] = field(default_factory=dict)
    _last_update: float = 0.0

    def _state(self, neighbor: int) -> _NeighborRateState:
        if neighbor not in self._neighbors:
            self._neighbors[neighbor] = _NeighborRateState(
                rate_index=SUPPORTED_RATES.index(self.initial_rate)
            )
        return self._neighbors[neighbor]

    def current_rate(self, neighbor: int) -> int:
        """Bit-rate currently selected toward ``neighbor``."""
        return SUPPORTED_RATES[self._state(neighbor).rate_index]

    def record_result(self, neighbor: int, success: bool, retries: int, now: float) -> None:
        """Record the outcome of one unicast frame toward ``neighbor``."""
        state = self._state(neighbor)
        state.frames += 1
        state.retries += retries
        if not success:
            state.drops += 1
        if now - self._last_update >= self.period:
            self._evaluate_all()
            self._last_update = now

    def _evaluate_all(self) -> None:
        """End-of-period evaluation for every neighbour (Onoe decision rules)."""
        for state in self._neighbors.values():
            if state.frames == 0:
                continue
            avg_retries = state.retries / state.frames
            drop_fraction = state.drops / state.frames
            if drop_fraction > 0.5 or avg_retries >= 2.0:
                # Heavy loss: step down immediately and reset credits.
                state.rate_index = max(0, state.rate_index - 1)
                state.credits = 0
            elif avg_retries >= 1.0:
                # Mediocre period: lose a credit but hold the rate.
                state.credits = max(0, state.credits - 1)
            else:
                state.credits += 1
                if state.credits >= self.credits_to_raise:
                    state.rate_index = min(len(SUPPORTED_RATES) - 1, state.rate_index + 1)
                    state.credits = 0
            state.frames = 0
            state.retries = 0
            state.drops = 0
