"""CSMA/CA MAC model (802.11 DCF, simplified).

Each node owns one :class:`CsmaMac`.  The MAC pulls frames from the node's
protocol agent: whenever it wins a transmission opportunity it asks the agent
for the next frame, which is exactly the interface MORE's design assumes
("when the 802.11 MAC permits", Section 3.2.1) and what lets MORE remain
MAC-independent.

Model summary:

* Carrier sense with DIFS + uniform random backoff before every attempt;
  when the medium is sensed busy, the attempt is deferred until the medium
  becomes idle (plus a fresh DIFS + backoff).
* Broadcast frames are transmitted once, with no MAC acknowledgement — this
  is how MORE and ExOR send data.
* Unicast frames use stop-and-wait ARQ with exponential backoff up to a
  retry limit — this is how Srcr data and MORE/ExOR batch ACKs travel.
  The MAC-level ACK exchange is modelled as a SIFS + ACK-airtime delay on
  success rather than as a separate frame on the medium; data-frame loss and
  collisions are modelled in full.
* Collisions between contenders that can hear each other are avoided by
  carrier sense (as in real DCF most of the time); collisions from hidden
  terminals and overlapping transmissions are resolved by the medium.

The transmit path runs once per frame in every simulation, so it is written
allocation-free: completion and ARQ-turnaround callbacks are bound methods
(the in-flight :class:`~repro.sim.medium.Transmission` rides in a slot on
the MAC rather than in a per-frame closure), frame kinds dispatch on enum
identity, and the event queue / medium / PHY / agent references are cached
at construction instead of being re-resolved through the simulator on every
call.  ``SimConfig(engine="legacy")`` restores the original closure-based
path — bit-identical, just slower — as the reference side of the engine
differential tests and benchmark.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING

from repro.sim.frames import BROADCAST, Frame, FrameKind
from repro.sim.medium import Transmission

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.simulator import Simulator


class MacState(Enum):
    """MAC transmit-path state."""

    IDLE = "idle"
    CONTENDING = "contending"
    TRANSMITTING = "transmitting"
    WAITING_TURNAROUND = "waiting_turnaround"


class MacStats:
    """Per-node MAC counters."""

    def __init__(self) -> None:
        self.data_transmissions = 0
        self.control_transmissions = 0
        self.unicast_successes = 0
        self.unicast_drops = 0
        self.retries = 0
        self.busy_time = 0.0


class CsmaMac:
    """One node's CSMA/CA transmit path."""

    def __init__(self, node_id: int, simulator: "Simulator") -> None:
        self.node_id = node_id
        self.sim = simulator
        self.phy = simulator.config.phy
        # Hot-path collaborators, resolved once (the simulator builds its
        # event queue, RNG and medium before any node/MAC exists).
        self.events = simulator.events
        self.rng = simulator.rng
        self.medium = simulator.medium
        #: Fault injector (``None`` = fault-free): a crashed node's MAC
        #: neither starts contention nor fires a pending attempt.
        self.faults = simulator.faults
        #: The node's protocol agent; kept in sync by :meth:`SimNode.attach`.
        self.agent = None
        self.state = MacState.IDLE
        self.stats = MacStats()
        self._fast = getattr(simulator, "fast_engine", True)
        self._current_frame: Frame | None = None
        self._attempt = 0
        self._pending_handle = None
        self._inflight: Transmission | None = None
        self._finish_success = False
        # Per-attempt contention windows and PHY timing constants, resolved
        # once: the exponentiation in ``contention_window`` and the frozen
        # dataclass field lookups would otherwise run on every backoff.
        phy = self.phy
        self._windows = tuple(phy.contention_window(attempt)
                              for attempt in range(phy.retry_limit + 2))
        self._window_count = len(self._windows)
        self._difs = phy.difs
        self._slot_time = phy.slot_time
        self._turnaround = phy.sifs + phy.ack_airtime()
        self._draw_slots = simulator.rng.integers
        # (size_bytes, bitrate) -> airtime; flows reuse a handful of sizes.
        self._airtimes: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------ #
    # Agent-facing API
    # ------------------------------------------------------------------ #

    def trigger(self) -> None:
        """Notify the MAC that the agent may have frames to send.

        Safe to call at any time; a no-op unless the MAC is idle.
        """
        if self.state is not MacState.IDLE:
            return
        if self.faults is not None and self.faults.down(self.node_id):
            return  # crashed: the injector re-triggers on recovery
        agent = self.agent
        if agent is None or not agent.has_pending(self.events.now):
            return
        self._start_contention()

    # ------------------------------------------------------------------ #
    # Channel access
    # ------------------------------------------------------------------ #

    def _backoff_delay(self) -> float:
        """DIFS plus a random backoff drawn from the current contention window.

        The reference formulation; the fast engine inlines the equivalent
        draw (precomputed windows, cached timing constants) in
        :meth:`_start_contention`.
        """
        window = self.phy.contention_window(self._attempt)
        slots = int(self.rng.integers(0, window + 1))
        return self.phy.difs + self.phy.backoff_time(slots)

    def _start_contention(self, now: float | None = None) -> None:
        """Schedule the next transmission attempt respecting carrier sense."""
        self.state = MacState.CONTENDING
        events = self.events
        if now is None:
            now = events.now
        medium = self.medium
        if self._fast:
            # _backoff_delay inlined: the per-attempt window is precomputed
            # and the PHY timing constants are cached floats.
            attempt = self._attempt
            window = self._windows[attempt] if attempt < self._window_count \
                else self.phy.contention_window(attempt)
            delay = self._difs + int(self._draw_slots(0, window + 1)) * self._slot_time
            horizon = medium.busy_horizon(self.node_id, now)
            if horizon > now:
                delay += horizon - now
        else:
            delay = self._backoff_delay()
            if medium.is_busy(self.node_id, now):
                delay += medium.busy_until(self.node_id, now) - now
        self._pending_handle = events.schedule(delay, self._attempt_transmission)

    def _attempt_transmission(self) -> None:
        """Fire when the backoff expires: transmit if the medium is still idle."""
        self._pending_handle = None
        now = self.events.now
        if self.faults is not None and self.faults.down(self.node_id):
            # Crashed during backoff/turnaround: the NIC forgets the frame
            # (reported to the agent as a send failure, like an exhausted
            # retry) and the MAC drains to idle until recovery re-triggers.
            frame = self._current_frame
            if frame is not None:
                self._finish_frame(frame, success=False)
            else:
                self.state = MacState.IDLE
            return
        if self.medium.is_busy(self.node_id, now):
            # Someone grabbed the channel during our backoff; defer again.
            self._start_contention(now)
            return
        frame = self._current_frame
        if frame is None:
            agent = self.agent
            frame = agent.on_transmit_opportunity(now) if agent else None
        if frame is None:
            self.state = MacState.IDLE
            return
        self._transmit(frame)

    def _transmit(self, frame: Frame) -> None:
        """Put ``frame`` on the medium."""
        self.state = MacState.TRANSMITTING
        self._current_frame = frame
        self._attempt += 1
        agent = self.agent
        bitrate = None
        if agent is not None:
            bitrate = agent.select_bitrate(frame)
        if bitrate is None:
            bitrate = self.phy.bitrate
        if self._fast:
            key = (frame.size_bytes, bitrate)
            airtime = self._airtimes.get(key)
            if airtime is None:
                airtime = self._airtimes[key] = self.phy.frame_airtime(
                    frame.size_bytes, bitrate)
        else:
            airtime = self.phy.frame_airtime(frame.size_bytes, bitrate)
        now = self.events.now
        transmission = self.medium.begin(frame, now, airtime, bitrate)
        stats = self.stats
        if self._fast:
            is_data = frame.kind is FrameKind.DATA
        else:  # reference path: the original string-compare dispatch
            is_data = frame.kind.value == "data"
        if is_data:
            stats.data_transmissions += 1
        else:
            stats.control_transmissions += 1
        stats.busy_time += airtime
        if agent is not None:
            agent.on_transmission_started(frame, now)
        if self._fast:
            self._inflight = transmission
            self.events.schedule_callback(airtime, self._complete_inflight)
        else:
            # repro: allow-PERF001 — retained legacy reference path (per-frame
            # closures are exactly what the fast path above replaces)
            # repro: allow-EVT101 — the legacy branch stays byte-faithful to
            # the original handle-returning call the fast path replaces
            self.events.schedule(airtime, lambda: self._complete(transmission))

    def _complete_inflight(self) -> None:
        """Bound-method completion callback (no per-frame closure)."""
        transmission = self._inflight
        self._inflight = None
        self._complete(transmission)

    def _complete(self, transmission: Transmission) -> None:
        """Resolve receptions and run the ARQ logic once the frame leaves the air."""
        now = self.events.now
        receivers = self.medium.complete(transmission, now)
        frame = transmission.frame
        self.sim.deliver(frame, receivers)

        if frame.receiver == BROADCAST:
            self._finish_frame(frame, success=True)
            return

        delivered = frame.receiver in receivers
        turnaround = self._turnaround if self._fast \
            else self.phy.sifs + self.phy.ack_airtime()
        if delivered:
            self.stats.unicast_successes += 1
            if self._fast:
                self._finish_success = True
                self._defer(turnaround, self._finish_inflight)
            else:
                # repro: allow-PERF001 — retained legacy reference path
                self._defer(turnaround, lambda: self._finish_frame(frame, success=True))
            return
        # No MAC ACK: retry with a larger contention window or give up.
        self.stats.retries += 1
        if self._attempt > self.phy.retry_limit:
            self.stats.unicast_drops += 1
            if self._fast:
                self._finish_success = False
                self._defer(turnaround, self._finish_inflight)
            else:
                # repro: allow-PERF001 — retained legacy reference path
                self._defer(turnaround, lambda: self._finish_frame(frame, success=False))
            return
        self.state = MacState.WAITING_TURNAROUND
        if self._fast:
            self.events.schedule_callback(turnaround, self._start_contention)
        else:
            # repro: allow-EVT101 — retained legacy reference path
            self.events.schedule(turnaround, self._start_contention)

    def _defer(self, delay: float, action) -> None:
        """Hold the MAC for the virtual ACK turnaround, then continue."""
        self.state = MacState.WAITING_TURNAROUND
        if self._fast:
            self.events.schedule_callback(delay, action)
        else:
            # repro: allow-EVT101 — retained legacy reference path
            self.events.schedule(delay, action)

    def _finish_inflight(self) -> None:
        """Bound-method ARQ-finish callback (no per-frame closure)."""
        self._finish_frame(self._current_frame, self._finish_success)

    def _finish_frame(self, frame: Frame, success: bool) -> None:
        """Report the outcome to the agent and look for more work."""
        # Drop the contention handle of the finished frame: leaving it in
        # place leaked a stale (already-fired or superseded) handle across
        # frames, pinning the old event alive and inviting a stale cancel
        # to be confused with the next frame's contention.
        handle = self._pending_handle
        if handle is not None:
            handle.cancel()
            self._pending_handle = None
        frame.mac_attempts = self._attempt
        self._current_frame = None
        self._attempt = 0
        self.state = MacState.IDLE
        agent = self.agent
        if agent is not None:
            agent.on_frame_sent(frame, success, self.events.now)
        # Immediately contend again if the agent still has traffic.
        self.trigger()
