"""CSMA/CA MAC model (802.11 DCF, simplified).

Each node owns one :class:`CsmaMac`.  The MAC pulls frames from the node's
protocol agent: whenever it wins a transmission opportunity it asks the agent
for the next frame, which is exactly the interface MORE's design assumes
("when the 802.11 MAC permits", Section 3.2.1) and what lets MORE remain
MAC-independent.

Model summary:

* Carrier sense with DIFS + uniform random backoff before every attempt;
  when the medium is sensed busy, the attempt is deferred until the medium
  becomes idle (plus a fresh DIFS + backoff).
* Broadcast frames are transmitted once, with no MAC acknowledgement — this
  is how MORE and ExOR send data.
* Unicast frames use stop-and-wait ARQ with exponential backoff up to a
  retry limit — this is how Srcr data and MORE/ExOR batch ACKs travel.
  The MAC-level ACK exchange is modelled as a SIFS + ACK-airtime delay on
  success rather than as a separate frame on the medium; data-frame loss and
  collisions are modelled in full.
* Collisions between contenders that can hear each other are avoided by
  carrier sense (as in real DCF most of the time); collisions from hidden
  terminals and overlapping transmissions are resolved by the medium.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING

from repro.sim.frames import Frame
from repro.sim.medium import Transmission

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.simulator import Simulator


class MacState(Enum):
    """MAC transmit-path state."""

    IDLE = "idle"
    CONTENDING = "contending"
    TRANSMITTING = "transmitting"
    WAITING_TURNAROUND = "waiting_turnaround"


class MacStats:
    """Per-node MAC counters."""

    def __init__(self) -> None:
        self.data_transmissions = 0
        self.control_transmissions = 0
        self.unicast_successes = 0
        self.unicast_drops = 0
        self.retries = 0
        self.busy_time = 0.0


class CsmaMac:
    """One node's CSMA/CA transmit path."""

    def __init__(self, node_id: int, simulator: "Simulator") -> None:
        self.node_id = node_id
        self.sim = simulator
        self.phy = simulator.config.phy
        self.state = MacState.IDLE
        self.stats = MacStats()
        self._current_frame: Frame | None = None
        self._attempt = 0
        self._pending_handle = None

    # ------------------------------------------------------------------ #
    # Agent-facing API
    # ------------------------------------------------------------------ #

    @property
    def agent(self):
        """The protocol agent attached to this node."""
        return self.sim.nodes[self.node_id].agent

    def trigger(self) -> None:
        """Notify the MAC that the agent may have frames to send.

        Safe to call at any time; a no-op unless the MAC is idle.
        """
        if self.state is not MacState.IDLE:
            return
        if self.agent is None or not self.agent.has_pending(self.sim.now):
            return
        self._start_contention()

    # ------------------------------------------------------------------ #
    # Channel access
    # ------------------------------------------------------------------ #

    def _backoff_delay(self) -> float:
        """DIFS plus a random backoff drawn from the current contention window."""
        window = self.phy.contention_window(self._attempt)
        slots = int(self.sim.rng.integers(0, window + 1))
        return self.phy.difs + self.phy.backoff_time(slots)

    def _start_contention(self) -> None:
        """Schedule the next transmission attempt respecting carrier sense."""
        self.state = MacState.CONTENDING
        now = self.sim.now
        delay = self._backoff_delay()
        if self.sim.medium.is_busy(self.node_id, now):
            delay += self.sim.medium.busy_until(self.node_id, now) - now
        self._pending_handle = self.sim.schedule(delay, self._attempt_transmission)

    def _attempt_transmission(self) -> None:
        """Fire when the backoff expires: transmit if the medium is still idle."""
        now = self.sim.now
        if self.sim.medium.is_busy(self.node_id, now):
            # Someone grabbed the channel during our backoff; defer again.
            self._start_contention()
            return
        frame = self._current_frame
        if frame is None:
            frame = self.agent.on_transmit_opportunity(now) if self.agent else None
        if frame is None:
            self.state = MacState.IDLE
            return
        self._transmit(frame)

    def _transmit(self, frame: Frame) -> None:
        """Put ``frame`` on the medium."""
        self.state = MacState.TRANSMITTING
        self._current_frame = frame
        self._attempt += 1
        bitrate = None
        if self.agent is not None:
            bitrate = self.agent.select_bitrate(frame)
        if bitrate is None:
            bitrate = self.phy.bitrate
        airtime = self.phy.frame_airtime(frame.size_bytes, bitrate)
        transmission = self.sim.medium.begin(frame, self.sim.now, airtime, bitrate)
        if frame.kind.value == "data":
            self.stats.data_transmissions += 1
        else:
            self.stats.control_transmissions += 1
        self.stats.busy_time += airtime
        if self.agent is not None:
            self.agent.on_transmission_started(frame, self.sim.now)
        self.sim.schedule(airtime, lambda: self._complete(transmission))

    def _complete(self, transmission: Transmission) -> None:
        """Resolve receptions and run the ARQ logic once the frame leaves the air."""
        now = self.sim.now
        receivers = self.sim.medium.complete(transmission, now)
        frame = transmission.frame
        self.sim.deliver(frame, receivers)

        if frame.is_broadcast:
            self._finish_frame(frame, success=True)
            return

        delivered = frame.receiver in receivers
        turnaround = self.phy.sifs + self.phy.ack_airtime()
        if delivered:
            self.stats.unicast_successes += 1
            self._defer(turnaround, lambda: self._finish_frame(frame, success=True))
            return
        # No MAC ACK: retry with a larger contention window or give up.
        self.stats.retries += 1
        if self._attempt > self.phy.retry_limit:
            self.stats.unicast_drops += 1
            self._defer(turnaround, lambda: self._finish_frame(frame, success=False))
            return
        self.state = MacState.WAITING_TURNAROUND
        self.sim.schedule(turnaround, self._start_contention)

    def _defer(self, delay: float, action) -> None:
        """Hold the MAC for the virtual ACK turnaround, then continue."""
        self.state = MacState.WAITING_TURNAROUND
        self.sim.schedule(delay, action)

    def _finish_frame(self, frame: Frame, success: bool) -> None:
        """Report the outcome to the agent and look for more work."""
        frame.mac_attempts = self._attempt
        self._current_frame = None
        self._attempt = 0
        self.state = MacState.IDLE
        if self.agent is not None:
            self.agent.on_frame_sent(frame, success, self.sim.now)
        # Immediately contend again if the agent still has traffic.
        self.trigger()
