"""Discrete-event 802.11 wireless substrate (the paper's testbed stand-in)."""

from repro.sim.autorate import OnoeRateController
from repro.sim.channels import (
    CHANNEL_MODELS,
    ChannelModel,
    ChannelSpec,
    DistanceFading,
    GilbertElliott,
    StaticBernoulli,
    TraceDriven,
    build_channel_model,
)
from repro.sim.events import EventHandle, EventQueue, LegacyEventQueue
from repro.sim.frames import BROADCAST, Frame, FrameKind
from repro.sim.mac import CsmaMac, MacState
from repro.sim.medium import Transmission, WirelessMedium
from repro.sim.node import SimNode
from repro.sim.radio import (
    RATE_1MBPS,
    RATE_2MBPS,
    RATE_5_5MBPS,
    RATE_11MBPS,
    SUPPORTED_RATES,
    ChannelConfig,
    PhyConfig,
    SimConfig,
)
from repro.sim.simulator import Simulator
from repro.sim.trace import FlowRecord, StatsCollector

__all__ = [
    "BROADCAST",
    "CHANNEL_MODELS",
    "ChannelConfig",
    "ChannelModel",
    "ChannelSpec",
    "CsmaMac",
    "DistanceFading",
    "GilbertElliott",
    "StaticBernoulli",
    "TraceDriven",
    "build_channel_model",
    "EventHandle",
    "EventQueue",
    "LegacyEventQueue",
    "FlowRecord",
    "Frame",
    "FrameKind",
    "MacState",
    "OnoeRateController",
    "PhyConfig",
    "RATE_11MBPS",
    "RATE_1MBPS",
    "RATE_2MBPS",
    "RATE_5_5MBPS",
    "SUPPORTED_RATES",
    "SimConfig",
    "SimNode",
    "Simulator",
    "StatsCollector",
    "Transmission",
    "WirelessMedium",
]
