"""Top-level simulator tying together topology, medium, MACs and agents."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sim.channels import build_channel_model
from repro.sim.events import EventHandle, EventQueue
from repro.sim.frames import Frame
from repro.sim.medium import WirelessMedium
from repro.sim.node import SimNode
from repro.sim.radio import SimConfig
from repro.sim.trace import StatsCollector
from repro.topology.graph import Topology


class Simulator:
    """Discrete-event wireless network simulator.

    Typical use::

        sim = Simulator(topology, SimConfig(seed=1))
        agents = build_more_flow(sim, source, destination, file_bytes)
        sim.run(until=60.0, stop_condition=sim.stats.all_flows_complete)
    """

    def __init__(self, topology: Topology, config: SimConfig | None = None) -> None:
        self.topology = topology
        self.config = config if config is not None else SimConfig()
        self.events = EventQueue()
        self.rng = np.random.default_rng(self.config.seed)
        # The channel model draws from its own seed-derived stream, so a
        # static-channel simulation consumes the main RNG exactly as before.
        model = build_channel_model(self.config.channel_model,
                                    seed=self.config.seed)
        self.medium = WirelessMedium(topology, self.config.channel, self.rng,
                                     model=model,
                                     vectorized=self.config.vectorized_medium)
        self.nodes = [SimNode(i, self) for i in range(topology.node_count)]
        self.stats = StatsCollector()

    # ------------------------------------------------------------------ #
    # Clock and scheduling
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.events.now

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` simulated seconds."""
        return self.events.schedule(delay, callback)

    def run(self, until: float | None = None,
            stop_condition: Callable[[], bool] | None = None,
            max_events: int | None = None) -> float:
        """Run the simulation; see :meth:`EventQueue.run`."""
        horizon = until if until is not None else self.config.max_duration
        return self.events.run(until=horizon, stop_condition=stop_condition,
                               max_events=max_events)

    # ------------------------------------------------------------------ #
    # Agent management and frame delivery
    # ------------------------------------------------------------------ #

    def attach_agent(self, node_id: int, agent) -> None:
        """Attach ``agent`` to node ``node_id``."""
        self.nodes[node_id].attach(agent)

    def deliver(self, frame: Frame, receivers: list[int]) -> None:
        """Hand a completed frame to the agents of every node that received it.

        All successful receivers get the frame, including nodes that were not
        the MAC-level destination — overhearing is an essential part of
        opportunistic routing (and of MORE's ACK snooping).
        """
        if frame.kind.value == "data":
            self.stats.record_data_transmission(frame.sender)
        for node_id in receivers:
            agent = self.nodes[node_id].agent
            if agent is not None:
                agent.on_frame_received(frame, self.now)

    def trigger_node(self, node_id: int) -> None:
        """Poke a node's MAC (used by agents when new traffic appears)."""
        self.nodes[node_id].notify_pending()
