"""Top-level simulator tying together topology, medium, MACs and agents."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sim.channels import build_channel_model
from repro.sim.events import EventHandle, EventQueue, LegacyEventQueue
from repro.sim.faults import FaultInjector, build_fault_model
from repro.sim.monitor import SimMonitor
from repro.topology.mobility import build_mobility_model
from repro.sim.frames import Frame, FrameKind
from repro.sim.medium import WirelessMedium
from repro.sim.node import SimNode
from repro.sim.radio import SimConfig
from repro.sim.trace import StatsCollector
from repro.topology.graph import Topology


class Simulator:
    """Discrete-event wireless network simulator.

    Typical use::

        sim = Simulator(topology, SimConfig(seed=1))
        agents = build_more_flow(sim, source, destination, file_bytes)
        sim.run(until=60.0, stop_condition=sim.stats.all_flows_complete)

    ``SimConfig.engine`` selects the hot-path implementation: ``fast`` (the
    default) or ``legacy`` (the original scheduler and per-frame code paths,
    kept as the bit-identical reference for differential tests and the
    engine benchmark).
    """

    def __init__(self, topology: Topology, config: SimConfig | None = None) -> None:
        self.topology = topology
        self.config = config if config is not None else SimConfig()
        self.fast_engine = self.config.engine != "legacy"
        self.events = EventQueue() if self.fast_engine else LegacyEventQueue()
        self.rng = np.random.default_rng(self.config.seed)
        # The channel model draws from its own seed-derived stream, so a
        # static-channel simulation consumes the main RNG exactly as before.
        model = build_channel_model(self.config.channel_model,
                                    seed=self.config.seed)
        # Mobility randomness likewise rides its own seed-derived stream, so
        # a static-topology simulation consumes the main RNG exactly as
        # before.
        mobility = build_mobility_model(self.config.mobility,
                                        seed=self.config.seed)
        # Fault processes ride their own counter-based stream and, when the
        # spec is None, neither schedule events nor alter any hot path — a
        # fault-free simulation is bit-identical with or without the
        # subsystem (pinned by tests/sim/test_fault_differential.py).
        fault_model = build_fault_model(self.config.faults,
                                        seed=self.config.seed)
        self.faults = (FaultInjector(fault_model, self)
                       if fault_model is not None else None)
        self.medium = WirelessMedium(topology, self.config.channel, self.rng,
                                     model=model,
                                     vectorized=self.config.vectorized_medium,
                                     fast=self.fast_engine,
                                     mobility=mobility,
                                     faults=self.faults)
        # node id -> attached agent (or None); the flat list saves the
        # per-receiver node-object indirection on the delivery hot path and
        # is kept in sync by SimNode.attach.
        self._agents: list = [None] * topology.node_count
        self.nodes = [SimNode(i, self) for i in range(topology.node_count)]
        self.stats = StatsCollector()
        if self.faults is not None:
            self.faults.install()
        self.monitor = (SimMonitor(self, interval=self.config.monitor_interval)
                        if self.config.monitor else None)

    # ------------------------------------------------------------------ #
    # Clock and scheduling
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.events.now

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` simulated seconds."""
        return self.events.schedule(delay, callback)

    def schedule_callback(self, delay: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule`: no cancel handle is created.

        Dispatch order is identical to :meth:`schedule` (same
        ``(time, sequence)`` key space); use this when no teardown path
        ever cancels the event.
        """
        self.events.schedule_callback(delay, callback)

    def schedule_callback_at(self, time: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget absolute-time scheduling; see :meth:`schedule_callback`."""
        self.events.schedule_callback_at(time, callback)

    def run(self, until: float | None = None,
            stop_condition: Callable[[], bool] | None = None,
            max_events: int | None = None) -> float:
        """Run the simulation; see :meth:`EventQueue.run`.

        A ``stop_condition`` that is a bound method of this simulator's
        :class:`StatsCollector` (``sim.stats.all_flows_complete``, the
        standard case) is a pure function of the statistics, so under the
        fast engine it is re-evaluated only after events that changed the
        stats (tracked by ``StatsCollector.version``) instead of after every
        scheduler event.  The stopping event is identical: such a condition
        cannot change value between versions.
        """
        horizon = until if until is not None else self.config.max_duration
        if self.monitor is not None and not self.monitor.installed:
            self.monitor.install()
        condition = stop_condition
        version_source = None
        if (stop_condition is not None
                and getattr(stop_condition, "__self__", None) is self.stats):
            if self.fast_engine:
                version_source = self.stats
            elif stop_condition.__func__ is StatsCollector.all_flows_complete:
                # Legacy engine: evaluate the original per-flow scan after
                # every event, like the pre-refactor run loop did.
                condition = self.stats.all_flows_complete_scan
        if self.fast_engine:
            return self.events.run(until=horizon, stop_condition=condition,
                                   max_events=max_events,
                                   version_source=version_source)
        return self.events.run(until=horizon, stop_condition=condition,
                               max_events=max_events)

    # ------------------------------------------------------------------ #
    # Agent management and frame delivery
    # ------------------------------------------------------------------ #

    def attach_agent(self, node_id: int, agent) -> None:
        """Attach ``agent`` to node ``node_id``."""
        self.nodes[node_id].attach(agent)

    def deliver(self, frame: Frame, receivers: list[int]) -> None:
        """Hand a completed frame to the agents of every node that received it.

        All successful receivers get the frame, including nodes that were not
        the MAC-level destination — overhearing is an essential part of
        opportunistic routing (and of MORE's ACK snooping).
        """
        if self.fast_engine:
            if frame.kind is FrameKind.DATA:
                self.stats.record_data_transmission(frame.sender)
            agents = self._agents
            now = self.events.now
            for node_id in receivers:
                agent = agents[node_id]
                if agent is not None:
                    agent.on_frame_received(frame, now)
            return
        # Reference path: the original string-compare dispatch and
        # per-receiver node indirection.
        if frame.kind.value == "data":
            self.stats.record_data_transmission(frame.sender)
        for node_id in receivers:
            agent = self.nodes[node_id].agent
            if agent is not None:
                agent.on_frame_received(frame, self.now)

    def trigger_node(self, node_id: int) -> None:
        """Poke a node's MAC (used by agents when new traffic appears)."""
        self.nodes[node_id].notify_pending()
