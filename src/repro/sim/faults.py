"""Deterministic node-failure processes: crash/recover as a first-class axis.

The paper's robustness story is usually told at the *link* level (lossy,
bursty, time-varying channels) — but the sharpest test of "randomness over
structure" is a *node* that dies mid-batch: Srcr loses its one path, ExOR
loses a slot in its schedule, MORE loses a forwarder whose credits the
whole batch was budgeted around.  This module makes that an axis a
scenario can sweep, mirroring :class:`~repro.sim.channels.ChannelSpec` /
:class:`~repro.topology.mobility.MobilitySpec`:

* :class:`ScheduledOutages` — explicit per-node down windows (the
  reproducible "kill node 3 at t=5s" experiment).
* :class:`CrashRecover` — stochastic per-node up/down alternating renewal
  chains with exponential holding times; each node's k-th holding time is
  a pure function of ``(seed, node, k)`` via the shared SplitMix64 in
  :mod:`repro.rng`, so realisations replay exactly regardless of event
  interleaving and never touch the simulator's main RNG stream.
* :class:`AckBlackout` — periodic windows during which batch-ACK frames
  are suppressed on the air (the ACK-path failure MORE's Section 3.4
  tail-end is sensitive to), pure window arithmetic, no randomness.
* :class:`ControlSilence` — nodes that stop answering the control plane
  (link-state probes) while still forwarding data: the refresh loop plans
  around them as if they were gone.

A :class:`FaultSpec` is the declarative form (``kind`` + ``params``) that
rides inside :class:`~repro.scenarios.spec.ScenarioSpec` JSON, the
``repro run/sweep --faults`` CLI flag and sweepable ``faults.*`` axes;
:func:`build_fault_model` turns it into a live model and the simulator
attaches a :class:`FaultInjector` that walks the model's transitions on
the event queue.

Determinism: fault randomness derives from the cell seed mixed with a
private stream key via *counter-based* draws (no ``Generator`` state is
ever stored — enforced statically by the DET003 repro-check rule), and a
``faults=None`` / kind ``"none"`` run schedules no events and draws no
randomness: it is bit-identical to a simulator without the subsystem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.rng import splitmix64 as _splitmix64
from repro.sim.frames import Frame, FrameKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.simulator import Simulator

#: Stream key mixed with the cell seed so fault randomness is independent
#: of (and cannot perturb) the simulator's main RNG stream.
_FAULT_STREAM = 0xFA17B05


@dataclass
class FaultSpec:
    """Declarative fault-process description: ``kind`` plus its parameters.

    Round-trips through dicts/JSON inside a scenario spec.  ``params`` are
    keyword arguments of the model named by ``kind`` (see
    :data:`FAULT_MODELS`); an optional ``seed`` param pins the fault RNG
    stream independently of the cell seed.  ``kind="none"`` is a fault-free
    scenario (today's behaviour, bit for bit).
    """

    kind: str = "none"
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def is_none(self) -> bool:
        """True if this spec describes a fault-free simulation."""
        return self.kind == "none" and not self.params

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        if "kind" not in data:
            raise ValueError("fault spec needs a 'kind' field")
        return cls(kind=data["kind"], params=dict(data.get("params", {})))


class FaultModel:
    """A deterministic fault process over the simulation's node set.

    Subclasses describe *when* nodes are down (:meth:`next_transition` /
    :meth:`initial_down`), whether the batch-ACK path is currently blacked
    out (:meth:`ack_blackout`), and which nodes are invisible to the
    control plane (:meth:`control_silent_nodes`).  All answers must be
    pure functions of ``(seed, node, counter)`` — the injector may query
    them in any order and a fixed seed must replay the exact same fault
    realisation.
    """

    kind = "none"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.node_count = 0

    def bind(self, node_count: int) -> None:
        """Attach the model to a topology size; called by the injector once."""
        self.node_count = int(node_count)

    def initial_down(self, node: int) -> bool:
        """True if ``node`` starts the simulation crashed."""
        return False

    def next_transition(self, node: int, after: float) -> tuple[float, bool] | None:
        """Next ``(time, down?)`` state change for ``node`` strictly after
        ``after`` (``None`` = the node never changes state again)."""
        return None

    def ack_blackout(self, now: float) -> bool:
        """True while batch-ACK frames are suppressed on the air."""
        return False

    def control_silent_nodes(self, now: float) -> frozenset[int]:
        """Nodes currently invisible to control-plane probes (data plane
        unaffected)."""
        return frozenset()


class ScheduledOutages(FaultModel):
    """Explicit per-node down windows: the reproducible kill experiment.

    ``downs`` maps node id (int or str, for JSON) to a list of
    ``[start, end)`` windows during which the node is crashed.  Windows of
    one node must not overlap; they are sorted automatically.
    """

    kind = "scheduled"

    def __init__(self, downs: dict[Any, Any] | None = None, seed: int = 0) -> None:
        super().__init__(seed)
        windows: dict[int, list[tuple[float, float]]] = {}
        for node, spans in (downs or {}).items():
            parsed = sorted((float(start), float(end)) for start, end in spans)
            previous_end = -math.inf
            for start, end in parsed:
                if not start < end:
                    raise ValueError(f"scheduled outage window [{start}, {end}) "
                                     f"for node {node} is empty")
                if start < previous_end:
                    raise ValueError(f"scheduled outage windows for node {node} "
                                     "overlap")
                previous_end = end
            windows[int(node)] = parsed
        self._windows = windows

    def initial_down(self, node: int) -> bool:
        return any(start <= 0.0 < end for start, end in self._windows.get(node, ()))

    def next_transition(self, node: int, after: float) -> tuple[float, bool] | None:
        for start, end in self._windows.get(node, ()):
            if start > after:
                return (start, True)
            if end > after:
                return (end, False)
        return None


class CrashRecover(FaultModel):
    """Stochastic crash/recover: per-node alternating up/down renewal chains.

    Every node (optionally restricted by ``nodes`` / excluding ``protect``,
    so a preset can pin its flow endpoints alive) alternates exponential
    up-times of mean ``mean_uptime`` and down-times of mean
    ``mean_downtime``.  The k-th holding time of node *n* is derived from
    one SplitMix64 draw at counter ``(seed, n, k)`` — a pure function, so
    the chain replays identically however the injector interleaves with
    other events.  The realised chain prefix is cached per node (caching a
    pure result, not generator state — the RandomWaypoint precedent).
    """

    kind = "crash_recover"

    #: Cycles realised per chain extension (one vectorized SplitMix64 block).
    _CYCLES_PER_BLOCK = 8

    def __init__(self, mean_uptime: float = 30.0, mean_downtime: float = 5.0,
                 nodes: list[int] | None = None, protect: list[int] = (),
                 seed: int = 0) -> None:
        super().__init__(seed)
        self.mean_uptime = float(mean_uptime)
        self.mean_downtime = float(mean_downtime)
        if self.mean_uptime <= 0.0 or self.mean_downtime <= 0.0:
            raise ValueError("crash_recover holding-time means must be positive")
        self._nodes = None if nodes is None else frozenset(int(n) for n in nodes)
        self._protect = frozenset(int(n) for n in protect)
        self._chains: dict[int, list[tuple[float, bool]]] = {}

    def _affected(self, node: int) -> bool:
        if node in self._protect:
            return False
        return self._nodes is None or node in self._nodes

    def _uniform(self, node: int, counters: np.ndarray) -> np.ndarray:
        """Counter-based uniforms in (0, 1] for ``(seed, node, counter)``."""
        key = np.uint64(((self.seed ^ _FAULT_STREAM) * 0x9E3779B97F4A7C15)
                        & 0xFFFFFFFFFFFFFFFF)
        node_term = _splitmix64(np.uint64([node]) + key)
        mixed = _splitmix64(node_term + counters.astype(np.uint64))
        return (mixed >> np.uint64(11)).astype(np.float64) * 2.0**-53 + 2.0**-54

    def _extend_chain(self, node: int, chain: list[tuple[float, bool]]) -> None:
        """Realise the next block of up/down cycles onto ``chain``."""
        cycle = len(chain) // 2
        ks = np.arange(cycle, cycle + self._CYCLES_PER_BLOCK, dtype=np.uint64)
        two = np.uint64(2)
        uptimes = -self.mean_uptime * np.log(self._uniform(node, ks * two))
        downtimes = -self.mean_downtime * np.log(
            self._uniform(node, ks * two + np.uint64(1)))
        clock = chain[-1][0] if chain else 0.0
        for uptime, downtime in zip(uptimes, downtimes):
            clock += float(uptime)
            chain.append((clock, True))
            clock += float(downtime)
            chain.append((clock, False))

    def next_transition(self, node: int, after: float) -> tuple[float, bool] | None:
        if not self._affected(node):
            return None
        chain = self._chains.setdefault(node, [])
        while not chain or chain[-1][0] <= after:
            self._extend_chain(node, chain)
        for time, down in chain:
            if time > after:
                return (time, down)
        raise AssertionError("unreachable: chain extended past `after`")


class AckBlackout(FaultModel):
    """Periodic batch-ACK suppression windows (pure window arithmetic).

    Batch-ACK frames whose reception completes inside
    ``[offset + i*period, offset + i*period + duration)`` are lost on the
    air for every receiver.  Data and control frames are unaffected — this
    isolates the ACK path, the part of MORE a single lost frame hurts most
    (the source keeps flooding an already-decoded batch).
    """

    kind = "ack_blackout"

    def __init__(self, period: float = 10.0, duration: float = 2.0,
                 offset: float = 0.0, seed: int = 0) -> None:
        super().__init__(seed)
        self.period = float(period)
        self.duration = float(duration)
        self.offset = float(offset)
        if self.period <= 0.0:
            raise ValueError("ack_blackout period must be positive")
        if not 0.0 < self.duration <= self.period:
            raise ValueError("ack_blackout duration must be in (0, period]")
        if self.offset < 0.0:
            raise ValueError("ack_blackout offset must be non-negative")

    def ack_blackout(self, now: float) -> bool:
        if now < self.offset:
            return False
        return math.fmod(now - self.offset, self.period) < self.duration


class ControlSilence(FaultModel):
    """Nodes that stop answering link-state probes from ``start`` onwards.

    The data plane is untouched — the node still forwards — but the
    refresh loop's control view masks it out, so re-planned forwarder
    sets / routes route around a node that is actually alive.  This is the
    staleness dual of a crash: the plan is wrong, the network is fine.
    """

    kind = "control_silence"

    def __init__(self, nodes: list[int] = (), start: float = 0.0,
                 seed: int = 0) -> None:
        super().__init__(seed)
        self._silent = frozenset(int(n) for n in nodes)
        self.start = float(start)
        if self.start < 0.0:
            raise ValueError("control_silence start must be non-negative")

    def control_silent_nodes(self, now: float) -> frozenset[int]:
        return self._silent if now >= self.start else frozenset()


#: Fault models addressable from a :class:`FaultSpec`.
FAULT_MODELS: dict[str, type[FaultModel]] = {
    ScheduledOutages.kind: ScheduledOutages,
    CrashRecover.kind: CrashRecover,
    AckBlackout.kind: AckBlackout,
    ControlSilence.kind: ControlSilence,
}

#: Spec kinds accepted by :func:`build_fault_model` (``none`` = fault-free).
FAULT_KINDS = ("none",) + tuple(sorted(FAULT_MODELS))


def build_fault_model(spec: FaultSpec | None, seed: int = 0) -> FaultModel | None:
    """Instantiate the process a spec describes (``None``/none = fault-free).

    ``seed`` (normally the cell seed) drives the model's private RNG stream
    unless the spec params pin their own ``seed`` — the same convention as
    the channel and mobility models.
    """
    if spec is None or spec.kind == "none":
        if spec is not None and spec.params:
            raise ValueError("fault kind 'none' accepts no parameters")
        return None
    try:
        cls = FAULT_MODELS[spec.kind]
    except KeyError:
        raise ValueError(f"unknown fault kind {spec.kind!r}; expected one "
                         f"of {FAULT_KINDS}") from None
    params = dict(spec.params)
    params.setdefault("seed", int(seed))
    try:
        return cls(**params)
    except TypeError as error:
        # Surface bad `faults.<param>` overrides as a one-line user error.
        raise ValueError(f"bad parameter for faults {spec.kind!r}: {error}") \
            from None


class FaultInjector:
    """Runtime half of the fault subsystem: walks a model's transitions.

    The injector keeps an O(1) per-node down flag the hot paths consult
    (:meth:`down` from the MAC transmit gates,
    :meth:`filter_receivers` from the medium's reception resolution) and
    schedules exactly one outstanding transition event per affected node —
    a dead node neither transmits, receives, nor answers probes, and a
    recovering node's MAC is re-kicked so queued traffic resumes.

    Receiver filtering happens *after* the medium's reception draws, so
    the channel realisation (and the main RNG stream) is identical with
    and without faults: a crash changes who keeps a frame, never the dice.
    """

    def __init__(self, model: FaultModel, sim: "Simulator") -> None:
        self.model = model
        self.sim = sim
        node_count = sim.topology.node_count
        model.bind(node_count)
        self._down = [model.initial_down(node) for node in range(node_count)]
        self._down_count = sum(self._down)
        #: Counters surfaced in stall diagnoses and smoke assertions.
        self.crashes = 0
        self.recoveries = 0

    def install(self) -> None:
        """Schedule the first transition of every affected node."""
        events = self.sim.events
        for node in range(len(self._down)):
            transition = self.model.next_transition(node, 0.0)
            if transition is not None:
                time, down = transition
                events.schedule_callback_at(
                    time, partial(self._transition, node, down))

    # ------------------------------------------------------------------ #
    # Hot-path queries
    # ------------------------------------------------------------------ #

    def down(self, node: int) -> bool:
        """True if ``node`` is currently crashed (O(1), hot path)."""
        return self._down[node]

    def down_nodes(self) -> frozenset[int]:
        """The set of currently crashed nodes (diagnosis / control plane)."""
        return frozenset(node for node, down in enumerate(self._down) if down)

    def control_dead(self, now: float) -> frozenset[int]:
        """Nodes the control plane must plan around right now: crashed
        nodes plus control-silent ones."""
        return self.down_nodes() | self.model.control_silent_nodes(now)

    def filter_receivers(self, frame: Frame, receivers: list[int],
                         now: float) -> list[int]:
        """Drop receptions faults forbid; called by the medium after the
        channel draws so the RNG stream is fault-independent."""
        if frame.kind is FrameKind.BATCH_ACK and self.model.ack_blackout(now):
            return []
        if self._down_count == 0:
            return receivers
        down = self._down
        if down[frame.sender]:
            # The sender crashed while the frame was on the air: nobody
            # decodes a transmission that died with its radio.
            return []
        if not receivers:
            return receivers
        return [node for node in receivers if not down[node]]

    # ------------------------------------------------------------------ #
    # Transition events
    # ------------------------------------------------------------------ #

    def _transition(self, node: int, down: bool) -> None:
        now = self.sim.events.now
        if down != self._down[node]:
            self._down[node] = down
            self._down_count += 1 if down else -1
            if down:
                self.crashes += 1
            else:
                self.recoveries += 1
                # Wake the recovered node's MAC: traffic queued before the
                # crash (or heard since by neighbours) resumes immediately.
                self.sim.trigger_node(node)
        transition = self.model.next_transition(node, now)
        if transition is not None:
            time, next_down = transition
            self.sim.events.schedule_callback_at(
                time, partial(self._transition, node, next_down))
