"""Simulation node: glue between the MAC and a protocol agent."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.mac import CsmaMac

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.protocols.base import ProtocolAgent
    from repro.sim.simulator import Simulator


class SimNode:
    """One wireless router in the simulation.

    A node owns its MAC and hosts at most one protocol agent (the agent
    itself may multiplex several flows, as MORE forwarders do).
    """

    def __init__(self, node_id: int, simulator: "Simulator") -> None:
        self.node_id = node_id
        self.sim = simulator
        self.mac = CsmaMac(node_id, simulator)
        self.agent: "ProtocolAgent | None" = None

    def attach(self, agent: "ProtocolAgent") -> None:
        """Attach a protocol agent to this node."""
        self.agent = agent
        self.mac.agent = agent  # keep the MAC's cached reference in sync
        agents = getattr(self.sim, "_agents", None)
        if agents is not None:  # keep the simulator's delivery table in sync
            agents[self.node_id] = agent
        agent.bind(self)

    def notify_pending(self) -> None:
        """Tell the MAC that the agent (may) have new frames queued."""
        self.mac.trigger()
