"""Discrete-event engine.

A minimal but complete event scheduler: events are (time, sequence,
callback) tuples kept in a binary heap; ties in time are broken by insertion
order so runs are fully deterministic.  The engine underpins the whole
wireless substrate — the MAC, the medium and the protocol agents all operate
by scheduling callbacks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry; ordering is by (time, sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventQueue.schedule`, usable to cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event's callback from running (idempotent)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """True if the event has been cancelled."""
        return self._event.cancelled


class EventQueue:
    """A deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._heap: list[_ScheduledEvent] = []
        self._sequence = 0
        self.now = 0.0
        self.processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        event = _ScheduledEvent(time=self.now + delay, sequence=self._sequence, callback=callback)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(max(0.0, time - self.now), callback)

    @property
    def empty(self) -> bool:
        """True if no pending (non-cancelled) events remain."""
        return not any(not e.cancelled for e in self._heap)

    def run(self, until: float | None = None,
            stop_condition: Callable[[], bool] | None = None,
            max_events: int | None = None) -> float:
        """Process events in time order.

        Args:
            until: stop once the clock would pass this time (the clock is
                left at ``until``).
            stop_condition: evaluated after every event; processing stops as
                soon as it returns True.
            max_events: hard cap on processed events (guards against
                run-away protocols in tests).

        Returns:
            The simulation time when processing stopped.
        """
        processed_here = 0
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = event.time
            event.callback()
            self.processed += 1
            processed_here += 1
            if stop_condition is not None and stop_condition():
                return self.now
            if max_events is not None and processed_here >= max_events:
                return self.now
        if until is not None:
            self.now = max(self.now, until)
        return self.now
