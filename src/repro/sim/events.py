"""Discrete-event engine.

A minimal but complete event scheduler: events are plain ``(time, sequence,
handle)`` tuples kept in a binary heap; ties in time are broken by insertion
order so runs are fully deterministic.  The engine underpins the whole
wireless substrate — the MAC, the medium and the protocol agents all operate
by scheduling callbacks — which makes it the hottest loop of every
simulation, so the implementation is deliberately allocation-light:

* heap entries are tuples (no per-event dataclass), and the handle a caller
  may use to cancel is a ``__slots__`` object;
* cancellation is *lazy*: a cancelled entry stays in the heap (its handle's
  callback slot is cleared) and is discarded when it reaches the top, with
  a live-event counter making :attr:`EventQueue.empty` O(1) and a periodic
  compaction pass keeping the heap small when cancelled entries dominate;
* :meth:`EventQueue.run` hoists attribute lookups out of the dispatch loop.

:class:`LegacyEventQueue` is the original (pre-optimisation) implementation,
kept as the reference side of the engine differential tests
(``tests/sim/test_engine_differential.py``) and of the hot-path benchmark
(``benchmarks/test_engine_hot_path.py``): both queues run the exact same
event sequences, one of them just does it faster.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Protocol


def _FIRED() -> None:
    """Sentinel stored in a handle's callback slot once the event has fired,
    so a late ``cancel()`` neither double-counts nor marks the handle
    cancelled.  Compared by identity only; never actually called."""
    raise AssertionError("the fired sentinel must never be invoked")


class VersionSource(Protocol):
    """Anything exposing a counter that bumps when observable state changes
    (e.g. :class:`~repro.sim.trace.StatsCollector`)."""

    version: int

#: Lazy cancellation compacts the heap only when at least this many
#: cancelled entries have accumulated *and* they outnumber the live ones —
#: amortised O(log n) per operation, never a rescan on the hot path.
COMPACTION_MIN_CANCELLED = 64


class EventHandle:
    """Handle returned by :meth:`EventQueue.schedule`, usable to cancel."""

    __slots__ = ("time", "_callback", "_queue")

    def __init__(self, time: float, callback: Callable[[], None],
                 queue: "EventQueue") -> None:
        self.time = time
        self._callback: Callable[[], None] | None = callback
        self._queue = queue

    def cancel(self) -> None:
        """Prevent the event's callback from running (idempotent).

        O(1): the heap entry is left in place with its callback cleared and
        is dropped when it surfaces (or at the next compaction).
        """
        callback = self._callback
        if callback is None or callback is _FIRED:
            return  # already cancelled / already fired
        self._callback = None
        queue = self._queue
        queue._live -= 1
        queue._cancelled += 1
        if (queue._cancelled > COMPACTION_MIN_CANCELLED
                and queue._cancelled > queue._live):
            queue._compact()

    @property
    def cancelled(self) -> bool:
        """True if the event has been cancelled (False once it has fired)."""
        return self._callback is None


#: Heap entries carry either a cancellable handle or (on the
#: :meth:`EventQueue.schedule_callback` fast path) the bare callback.
_HeapEntry = tuple[float, int, "EventHandle | Callable[[], None]"]


class EventQueue:
    """A deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._heap: list[_HeapEntry] = []
        self._sequence = 0
        self._live = 0        # scheduled, not yet fired, not cancelled
        self._cancelled = 0   # cancelled entries still sitting in the heap
        self.now = 0.0
        self.processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        time = self.now + delay
        handle = EventHandle(time, callback, self)
        heapq.heappush(self._heap, (time, self._sequence, handle))
        self._sequence += 1
        self._live += 1
        return handle

    def schedule_callback(self, delay: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule`: no cancel handle is created.

        The MAC's completion/turnaround events never cancel, so the hot
        path skips materialising an :class:`EventHandle` per event; the
        callback itself rides in the heap tuple.  Dispatch order is
        unchanged (same ``(time, sequence)`` key space).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, self._sequence, callback))
        self._sequence += 1
        self._live += 1

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(max(0.0, time - self.now), callback)

    def schedule_callback_at(self, time: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule_at`: no cancel handle is created.

        The delay arithmetic is exactly :meth:`schedule_at`'s, so the heap
        keys — and therefore dispatch order — are bit-identical to the
        handle-returning path.
        """
        self.schedule_callback(max(0.0, time - self.now), callback)

    @property
    def empty(self) -> bool:
        """True if no pending (non-cancelled) events remain.  O(1)."""
        return self._live == 0

    def _compact(self) -> None:
        """Drop cancelled entries from the heap.

        Re-heapifying the surviving tuples cannot reorder events: the heap
        invariant is rebuilt over the same ``(time, sequence)`` keys, and
        dispatch order is fully determined by those keys.  The list is
        filtered in place so a :meth:`run` loop holding a reference to it
        (cancellations routinely happen inside callbacks) stays valid.
        """
        heap = self._heap
        survivors: list[_HeapEntry] = []
        for entry in heap:
            target = entry[2]
            if isinstance(target, EventHandle) and target._callback is None:
                continue
            survivors.append(entry)
        heap[:] = survivors
        heapq.heapify(heap)
        self._cancelled = 0

    def run(self, until: float | None = None,
            stop_condition: Callable[[], bool] | None = None,
            max_events: int | None = None,
            version_source: VersionSource | None = None) -> float:
        """Process events in time order.

        Args:
            until: stop once the clock would pass this time (the clock is
                left at ``until``).
            stop_condition: evaluated after every event; processing stops as
                soon as it returns True.
            max_events: hard cap on processed events (guards against
                run-away protocols in tests).
            version_source: optional object with an integer ``version``
                attribute that increments whenever the state
                ``stop_condition`` reads changes (e.g. a
                :class:`~repro.sim.trace.StatsCollector`).  When given, the
                condition is only evaluated after *state-changing* events —
                a pure function of that state cannot change value while the
                version stands still, so the stopping event is identical to
                evaluating it every time.

        Returns:
            The simulation time when processing stopped.
        """
        heap = self._heap
        pop = heapq.heappop
        now = self.now
        processed_here = 0
        last_version = -1
        try:
            while heap:
                entry = heap[0]
                target = entry[2]
                handle: EventHandle | None
                if isinstance(target, EventHandle):
                    callback = target._callback
                    if callback is None:  # lazily-cancelled entry surfacing
                        pop(heap)
                        self._cancelled -= 1
                        continue
                    handle = target
                else:  # handle-free entry: the callback rides in the tuple
                    callback = target
                    handle = None
                time = entry[0]
                if until is not None and time > until:
                    now = until
                    break
                pop(heap)
                self._live -= 1
                if handle is not None:
                    handle._callback = _FIRED
                self.now = now = time
                callback()
                processed_here += 1
                if stop_condition is not None:
                    if version_source is None:
                        if stop_condition():
                            return now
                    else:
                        version = version_source.version
                        if version != last_version:
                            last_version = version
                            if stop_condition():
                                return now
                if max_events is not None and processed_here >= max_events:
                    return now
        finally:
            self.processed += processed_here
        if until is not None and until > now:
            now = until
        self.now = now
        return now


# --------------------------------------------------------------------------- #
# Reference implementation (the pre-optimisation engine)
# --------------------------------------------------------------------------- #


@dataclass(order=True)
class _LegacyScheduledEvent:
    """Internal heap entry of the legacy queue; ordering is (time, sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class LegacyEventHandle:
    """Handle returned by :meth:`LegacyEventQueue.schedule`."""

    __slots__ = ("_event",)

    def __init__(self, event: _LegacyScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event's callback from running (idempotent)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """True if the event has been cancelled."""
        return self._event.cancelled


class LegacyEventQueue:
    """The original dataclass-heap scheduler, kept as the differential and
    benchmark reference for :class:`EventQueue` (select it with
    ``SimConfig(engine="legacy")``).  Dispatch order, tie-breaking and the
    public API are identical; only the constant factors differ."""

    def __init__(self) -> None:
        self._heap: list[_LegacyScheduledEvent] = []
        self._sequence = 0
        self.now = 0.0
        self.processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> LegacyEventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        event = _LegacyScheduledEvent(time=self.now + delay, sequence=self._sequence,
                                      callback=callback)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return LegacyEventHandle(event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> LegacyEventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(max(0.0, time - self.now), callback)

    def schedule_callback(self, delay: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule`: no cancel handle is created.

        The legacy heap stores a full event record either way; the variant
        exists so callers can state no-cancel intent identically on both
        engines (same ``(time, sequence)`` keys, same dispatch order).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        event = _LegacyScheduledEvent(time=self.now + delay, sequence=self._sequence,
                                      callback=callback)
        self._sequence += 1
        heapq.heappush(self._heap, event)

    def schedule_callback_at(self, time: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule_at`: no cancel handle is created."""
        self.schedule_callback(max(0.0, time - self.now), callback)

    @property
    def empty(self) -> bool:
        """True if no pending (non-cancelled) events remain (O(n) scan)."""
        return not any(not e.cancelled for e in self._heap)

    def run(self, until: float | None = None,
            stop_condition: Callable[[], bool] | None = None,
            max_events: int | None = None) -> float:
        """Process events in time order (see :meth:`EventQueue.run`)."""
        processed_here = 0
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = event.time
            event.callback()
            self.processed += 1
            processed_here += 1
            if stop_condition is not None and stop_condition():
                return self.now
            if max_events is not None and processed_here >= max_events:
                return self.now
        if until is not None:
            self.now = max(self.now, until)
        return self.now


# --------------------------------------------------------------------------- #
# Canonical scheduler benchmark workload
# --------------------------------------------------------------------------- #

#: Shared by ``benchmarks/test_engine_hot_path.py`` (the perf-strict
#: events/s floor) and ``scripts/bench_baseline.py`` (the committed
#: ``engine_eps`` baseline) so both measure the same quantity.
BENCH_TIMERS = 32
BENCH_EVENTS = 60_000
BENCH_CANCEL_EVERY = 3


def pump_timer_workload(queue: "EventQueue | LegacyEventQueue",
                        events: int = BENCH_EVENTS,
                        timers: int = BENCH_TIMERS,
                        cancel_every: int = BENCH_CANCEL_EVERY) -> int:
    """Drive a deterministic timer workload through ``queue``; return a digest.

    ``timers`` self-rescheduling timers with co-prime periods model the MAC
    retransmission/backoff traffic of a busy mesh; every ``cancel_every``-th
    firing additionally schedules a watchdog and immediately cancels it
    (the dominant handle pattern of the CSMA MAC), exercising lazy
    cancellation and compaction.  Works on any queue with the
    ``schedule``/``run`` API; the returned digest lets differential tests
    assert both queues dispatched the identical sequence.
    """
    fired = 0
    digest = 0

    def make_timer(index: int) -> Callable[[], None]:
        period = 1.0 + (index % 7) * 0.001 + index * 1e-6

        def tick() -> None:
            nonlocal fired, digest
            fired += 1
            digest = (digest * 31 + index + 1) % 1_000_000_007
            if fired < events:
                handle = queue.schedule(period, tick)
                if fired % cancel_every == 0:
                    watchdog = queue.schedule(period * 2.0, tick)
                    watchdog.cancel()
                    _ = handle  # keep the live handle pattern of the MAC
        return tick

    for index in range(timers):
        # repro: allow-EVT101 — the benchmark deliberately drives the
        # handle-allocating path; measuring its cost is the point.
        queue.schedule(0.001 * (index + 1), make_timer(index))
    queue.run(max_events=events)
    return digest
