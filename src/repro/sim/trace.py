"""Simulation statistics: per-flow delivery tracking and throughput.

The experiment harness reads throughput (packets per second of *delivered
native data*, matching how the paper reports pkt/s) and transmission counts
from here.  Protocol agents report deliveries; the MAC and medium report
channel usage.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FlowRecord:
    """Lifecycle record of one unicast flow (one file transfer)."""

    flow_id: int
    source: int
    destination: int
    total_packets: int
    packet_size: int
    start_time: float = 0.0
    end_time: float | None = None
    delivered_packets: int = 0
    delivered_batches: int = 0
    duplicate_packets: int = 0
    #: True when the flow was given up on (progress timeout after faults,
    #: say) rather than delivered; ``abort_reason`` says why.  A structured
    #: outcome — the alternative is a run that never terminates.
    aborted: bool = False
    abort_reason: str = ""

    @property
    def completed(self) -> bool:
        """True once every native packet has been delivered to the application."""
        return self.delivered_packets >= self.total_packets

    @property
    def finished(self) -> bool:
        """True once the flow reached *any* terminal state: fully delivered
        or structurally aborted."""
        return self.completed or self.aborted

    @property
    def duration(self) -> float | None:
        """Transfer duration in seconds (None until completion)."""
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    def throughput_pkts(self, now: float | None = None) -> float:
        """Delivered throughput in packets per second.

        If the flow has not completed, ``now`` must be supplied and the
        throughput is computed over the elapsed time so far.
        """
        end = self.end_time if self.end_time is not None else now
        if end is None:
            raise ValueError("flow not complete; supply `now` for partial throughput")
        elapsed = max(end - self.start_time, 1e-9)
        return self.delivered_packets / elapsed

    def throughput_bits(self, now: float | None = None) -> float:
        """Delivered throughput in bits per second."""
        return self.throughput_pkts(now) * self.packet_size * 8


@dataclass
class StatsCollector:
    """Aggregates flow records and channel counters for one simulation run.

    ``version`` increments on every mutation.  The simulator uses it to
    evaluate stats-derived stop conditions (``all_flows_complete``) only
    after events that actually changed the statistics, instead of after
    every scheduler event — a pure function of the collector cannot change
    value while ``version`` stands still.
    """

    flows: dict[int, FlowRecord] = field(default_factory=dict)
    data_transmissions: dict[int, int] = field(default_factory=dict)
    #: Bumped on every mutation; see class docstring.
    version: int = 0
    #: Flows registered but not yet complete — keeps the standard stop
    #: condition O(1) instead of a scan over every flow per evaluation.
    _incomplete: int = 0

    def register_flow(self, flow_id: int, source: int, destination: int,
                      total_packets: int, packet_size: int, start_time: float) -> FlowRecord:
        """Create the record for a new flow."""
        record = FlowRecord(
            flow_id=flow_id,
            source=source,
            destination=destination,
            total_packets=total_packets,
            packet_size=packet_size,
            start_time=start_time,
        )
        previous = self.flows.get(flow_id)
        if previous is not None and not previous.completed:
            self._incomplete -= 1  # re-registration replaces the old record
        self.flows[flow_id] = record
        if not record.completed:  # zero-packet flows count as complete
            self._incomplete += 1
        self.version += 1
        return record

    def record_delivery(self, flow_id: int, packets: int, now: float,
                        batch_complete: bool = False) -> None:
        """Record ``packets`` native packets handed to the destination application."""
        record = self.flows[flow_id]
        was_complete = record.completed
        record.delivered_packets += packets
        if batch_complete:
            record.delivered_batches += 1
        if record.completed and record.end_time is None:
            record.end_time = now
            if not was_complete:  # zero-packet flows were never counted
                self._incomplete -= 1
        self.version += 1

    def record_abort(self, flow_id: int, now: float, reason: str = "") -> None:
        """Record a structured give-up on ``flow_id`` (a ``FlowAborted``
        outcome): the flow stops counting as incomplete, so the standard
        stop condition terminates the run instead of spinning forever."""
        record = self.flows[flow_id]
        if record.end_time is None:
            record.end_time = now
            record.aborted = True
            record.abort_reason = reason
            if not record.completed:
                self._incomplete -= 1
        self.version += 1

    def record_duplicate(self, flow_id: int) -> None:
        """Record a non-innovative / duplicate packet arriving at the destination."""
        if flow_id in self.flows:
            self.flows[flow_id].duplicate_packets += 1
            self.version += 1

    def record_data_transmission(self, node_id: int) -> None:
        """Count a data-frame transmission by ``node_id``."""
        self.data_transmissions[node_id] = self.data_transmissions.get(node_id, 0) + 1
        self.version += 1

    def all_flows_complete(self) -> bool:
        """True when every registered flow reached a terminal state
        (delivered in full, or structurally aborted).

        O(1): tracked via the incomplete-flow counter, not a per-call scan.
        """
        return self._incomplete == 0 and bool(self.flows)

    def all_flows_complete_scan(self) -> bool:
        """Reference (pre-optimisation) evaluation: a scan over every flow.

        Semantically identical to :meth:`all_flows_complete`; the simulator
        substitutes this under ``engine="legacy"`` so the reference
        measurement keeps the original per-event stop-condition cost.
        """
        return bool(self.flows) and all(f.finished for f in self.flows.values())

    def total_data_transmissions(self) -> int:
        """Total data-frame transmissions across all nodes."""
        return sum(self.data_transmissions.values())
