#!/usr/bin/env python3
"""bench-baseline: record the engine, coding and medium performance floor.

Runs the coding micro-benchmarks (GF(2^8) kernels, encoder/buffer/decoder
packet rates, one small end-to-end transfer per protocol), the
medium-resolution stage (frames/s through ``WirelessMedium.complete`` on a
50-node mesh, vectorized vs the reference scalar loop) and the
event-engine stage (events/s through the scheduler, fast vs legacy queue;
end-to-end MORE wall-clock fast vs legacy engine; the ``large_mesh_200``
scale preset) and writes the results to ``BENCH_coding.json`` at the repo
root, so later PRs have a committed baseline to regress against:

    make bench-baseline                 # or
    PYTHONPATH=src python scripts/bench_baseline.py [output.json]

Schema ``bench-baseline/v3`` added the ``engine`` section (``engine_eps``,
``engine_eps_legacy``, ``engine_speedup``, ``more_end_to_end_speedup``,
``large_mesh_200_wall_seconds``) and a ``sim_fps`` field (data frames on
the air per wall-clock second) for every protocol entry.  Schema
``bench-baseline/v4`` adds the ``decode_engines`` stage (insert-plus-decode
packet rates for the vectorized / eager / scalar coding-buffer engines and
the speedup against the v3 committed decode baseline) and the kilonode
entries in ``engine`` (``kilonode_wall_seconds`` / ``kilonode_sim_fps``:
the 1000-node preset).  ``destination_decode_pps`` now *includes* the
final ``decode()`` call — the deferred-transform engine moves the payload
back-substitution there, so an insert-only loop would overstate it — see
docs/performance.md for how to read the file.

Schema ``bench-baseline/v5`` adds the ``sweep`` stage (cold multi-sweep
cells/s through the persistent-pool orchestrator vs the PR 1 fresh-pool
runner, the steady-state warm-pool ratio, and the warm-cache replay of the
whole workload through the content-addressed store) and
``recode_speedup_vs_v4_baseline`` in ``coding_pps`` (the forwarder recode
rate against the committed v4 figure — the associativity-fused
``combine_rows`` path).

Every quantity is measured best-of-N (minimum over rounds), the same
discipline as :func:`repro.experiments.figures.table_4_1`: transient
machine load inflates individual rounds, never the reported figure.  The
file holds the machine-independent *shape* of the numbers; comparisons
across machines should look at ratios, not absolutes.
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.coding.buffer import ENGINES                  # noqa: E402
from repro.coding.decoder import BatchDecoder            # noqa: E402
from repro.coding.encoder import ForwarderEncoder, SourceEncoder  # noqa: E402
from repro.coding.packet import make_batch               # noqa: E402
from repro.experiments.orchestrator import (  # noqa: E402
    run_sweep,
    shutdown_shared_pools,
)
from repro.experiments.orchestrator.bench import (  # noqa: E402
    BENCH_CELLS,
    BENCH_SEEDS_PER_SWEEP,
    BENCH_SWEEPS,
    BENCH_WORKERS,
    bench_sweep_specs,
)
from repro.experiments.parallel import run_cells         # noqa: E402
from repro.experiments.runner import PROTOCOLS, RunConfig, run_single_flow  # noqa: E402
from repro.gf.arithmetic import scale_and_add            # noqa: E402
from repro.gf.kernels import ShiftedRows, gf_matmul      # noqa: E402
from repro.scenarios import build_topology, get_preset   # noqa: E402
from repro.sim.events import (                           # noqa: E402
    BENCH_EVENTS,
    EventQueue,
    LegacyEventQueue,
    pump_timer_workload,
)
from repro.sim.medium import WirelessMedium              # noqa: E402
from repro.sim.radio import ChannelConfig                # noqa: E402
from repro.topology.generator import random_geometric    # noqa: E402

K = 32
PACKET_SIZE = 1500
ROUNDS = 5
#: ``destination_decode_pps`` committed by the bench-baseline/v3 run (the
#: eager engine, insert loop only).  The vectorized engine's floor is 3x
#: this figure — asserted by ``benchmarks/test_decode_floor.py`` and
#: recorded here as ``decode_speedup_vs_v3_baseline``.
V3_DECODE_BASELINE_PPS = 3790.919869913409
#: ``forwarder_recode_pps`` committed by the bench-baseline/v4 run (vecmat
#: over K materialised recode rows per emitted packet).  The fused
#: ``combine_rows`` path must clear 1.5x this figure — asserted by
#: ``benchmarks/test_sweep_floor.py`` and recorded here as
#: ``recode_speedup_vs_v4_baseline``.
V4_RECODE_BASELINE_PPS = 7352.648894919501
MEDIUM_NODES = WirelessMedium.BENCH_NODE_COUNT
MEDIUM_FRAMES = WirelessMedium.BENCH_FRAMES
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_coding.json"


def best_of(measure, rounds: int = ROUNDS) -> float:
    """Minimum measured seconds over ``rounds`` calls."""
    return min(measure() for _ in range(rounds))


def timed(func) -> float:
    start = time.perf_counter()
    func()
    return time.perf_counter() - start


def kernel_benchmarks() -> dict[str, float]:
    """MB/s throughput of the GF(2^8) kernels (payload bytes processed)."""
    rng = np.random.default_rng(0)
    coefficients = rng.integers(0, 256, (K, K), dtype=np.uint8)
    payloads = rng.integers(0, 256, (K, PACKET_SIZE), dtype=np.uint8)
    operand = ShiftedRows(payloads)
    accumulator = np.zeros(PACKET_SIZE, dtype=np.uint8)
    packet = rng.integers(0, 256, PACKET_SIZE, dtype=np.uint8)

    matmul_s = best_of(lambda: timed(lambda: gf_matmul(coefficients, payloads)))
    cached_s = best_of(lambda: timed(lambda: operand.matmul(coefficients)))
    scale_s = best_of(lambda: timed(lambda: scale_and_add(accumulator, packet, 0x53)))
    produced = K * PACKET_SIZE / 1e6
    return {
        "gf_matmul_32x32x1500_mbps": produced / matmul_s,
        "shifted_rows_cached_mbps": produced / cached_s,
        "scale_and_add_1500B_mbps": PACKET_SIZE / 1e6 / scale_s,
    }


def coding_benchmarks() -> dict[str, float]:
    """Packets per second through the encoder / buffer / decoder stages."""
    batch = make_batch(batch_size=K, packet_size=PACKET_SIZE,
                       rng=np.random.default_rng(1))
    encoder = SourceEncoder(batch, np.random.default_rng(2))
    encoder.next_packets(K)  # build the cached operand outside the timing

    single_s = best_of(lambda: timed(encoder.next_packet))
    batched_s = best_of(lambda: timed(lambda: encoder.next_packets(K))) / K

    packets = encoder.next_packets(K)

    def decode_batch():
        decoder = BatchDecoder(batch_size=K, packet_size=PACKET_SIZE)
        for coded in packets:
            decoder.add_packet(coded)
        decoder.decode()  # deferred engines back-substitute here

    decode_s = best_of(lambda: timed(decode_batch)) / K

    def recode_batch():
        forwarder = ForwarderEncoder(batch_size=K, packet_size=PACKET_SIZE,
                                     rng=np.random.default_rng(3))
        for coded in packets[: K // 2]:
            forwarder.add_packet(coded)
        for _ in range(K // 2):
            forwarder.next_packet()

    recode_s = best_of(lambda: timed(recode_batch)) / K

    return {
        "source_encode_pps": 1.0 / single_s,
        "source_encode_batched_pps": 1.0 / batched_s,
        "destination_decode_pps": 1.0 / decode_s,
        "forwarder_recode_pps": 1.0 / recode_s,
        "recode_speedup_vs_v4_baseline": 1.0 / recode_s / V4_RECODE_BASELINE_PPS,
    }


def decode_engine_benchmarks() -> dict[str, float]:
    """Insert-plus-decode packet rates for every coding-buffer engine.

    One measured unit is a full destination batch: K coded packets through
    ``BatchDecoder.add_packet`` followed by ``decode()`` — the quantity
    the deferred-transform (vectorized) engine actually changes, and the
    same one ``benchmarks/test_decode_floor.py`` holds to 3x the v3
    committed baseline.
    """
    batch = make_batch(batch_size=K, packet_size=PACKET_SIZE,
                       rng=np.random.default_rng(1))
    encoder = SourceEncoder(batch, np.random.default_rng(2))
    packets = encoder.next_packets(K)

    def decode_with(engine: str) -> float:
        def once() -> None:
            decoder = BatchDecoder(batch_size=K, packet_size=PACKET_SIZE,
                                   engine=engine)
            for coded in packets:
                decoder.add_packet(coded)
            decoder.decode()
        return best_of(lambda: timed(once)) / K

    rates = {f"decode_{engine}_pps": 1.0 / decode_with(engine)
             for engine in ENGINES}
    rates["decode_engine_speedup"] = (
        rates["decode_vectorized_pps"] / rates["decode_eager_pps"])
    rates["decode_speedup_vs_v3_baseline"] = (
        rates["decode_vectorized_pps"] / V3_DECODE_BASELINE_PPS)
    return rates


def medium_benchmarks() -> dict[str, float]:
    """Frames per second through ``WirelessMedium.complete`` on a 50-node mesh.

    Measures the vectorized reception-resolution path against the reference
    scalar loop — same topology, same seed, back-to-back, and the exact
    schedule (``WirelessMedium.pump_broadcast_frames``) the perf-strict
    floor in ``benchmarks/test_vectorized_medium.py`` asserts on — so the
    recorded ratio and the asserted floor measure the same quantity.
    """
    topology = random_geometric(node_count=MEDIUM_NODES,
                                area=WirelessMedium.BENCH_AREA,
                                seed=WirelessMedium.BENCH_TOPOLOGY_SEED)

    elapsed = {}
    for label, vectorized in (("vectorized", True), ("scalar", False)):
        medium = WirelessMedium(
            topology, ChannelConfig(),
            np.random.default_rng(WirelessMedium.BENCH_RNG_SEED),
            vectorized=vectorized)
        elapsed[label] = best_of(
            lambda: timed(lambda: medium.pump_broadcast_frames(MEDIUM_FRAMES)))
    return {
        "reception_vectorized_fps": MEDIUM_FRAMES / elapsed["vectorized"],
        "reception_scalar_fps": MEDIUM_FRAMES / elapsed["scalar"],
        "reception_speedup": elapsed["scalar"] / elapsed["vectorized"],
    }


def engine_benchmarks() -> dict[str, float]:
    """Events per second through the scheduler, fast vs legacy queue.

    Same workload (``repro.sim.events.pump_timer_workload``) as the
    perf-strict floor in ``benchmarks/test_engine_hot_path.py``, so the
    committed events/s figure and the asserted speedup measure the same
    quantity.
    """
    def run_queue(factory) -> float:
        def once() -> float:
            queue = factory()
            return timed(lambda: pump_timer_workload(queue))
        return best_of(once)

    fast_s = run_queue(EventQueue)
    legacy_s = run_queue(LegacyEventQueue)
    return {
        "engine_eps": BENCH_EVENTS / fast_s,
        "engine_eps_legacy": BENCH_EVENTS / legacy_s,
        "engine_speedup": legacy_s / fast_s,
    }


def _measure_flow(topology, protocol: str, source: int, destination: int,
                  config: RunConfig, rounds: int = ROUNDS) -> dict[str, float]:
    """Best-of wall clock plus throughput rates for one flow."""
    result = None

    def run() -> None:
        nonlocal result
        result = run_single_flow(topology, protocol, source, destination,
                                 config=config)

    elapsed = best_of(lambda: timed(run), rounds=rounds)
    return {
        "wall_seconds": elapsed,
        "simulated_pps_per_wall_second": config.total_packets / elapsed,
        # Frames on the air per wall second: the end-to-end engine rate.
        "sim_fps": result.data_transmissions / elapsed,
    }


def protocol_benchmarks() -> dict[str, dict[str, float]]:
    """Simulated packets per wall-clock second for one transfer per protocol."""
    topology = build_topology(get_preset("fig_4_2").topology)
    results: dict[str, dict[str, float]] = {}
    for protocol in PROTOCOLS:
        config = RunConfig(total_packets=96, batch_size=K, packet_size=PACKET_SIZE,
                           seed=2)
        results[protocol] = _measure_flow(topology, protocol, 17, 2, config)
    # The payload-free mode on the same MORE transfer, for the speedup ratio.
    vector_config = RunConfig(total_packets=96, batch_size=K,
                              packet_size=PACKET_SIZE, seed=2, vector_only=True)
    results["MORE/vector-only"] = _measure_flow(topology, "MORE", 17, 2,
                                                vector_config)
    # The legacy (pre-refactor) engine on the same MORE transfer: the
    # committed end-to-end measurement of the engine overhaul.
    legacy_config = RunConfig(total_packets=96, batch_size=K,
                              packet_size=PACKET_SIZE, seed=2, engine="legacy")
    results["MORE/legacy-engine"] = _measure_flow(topology, "MORE", 17, 2,
                                                  legacy_config)
    return results


def scale_benchmarks() -> dict[str, float]:
    """The ``large_mesh_200`` scale preset: one MORE flow on 200 nodes."""
    spec = get_preset("large_mesh_200")
    topology = build_topology(spec.topology)
    source, destination = spec.workload.params["pairs"][0]
    config = spec.run_config(seed=spec.seeds[0])
    fast = _measure_flow(topology, "MORE", source, destination, config, rounds=3)
    legacy = _measure_flow(topology, "MORE", source, destination,
                           replace(config, engine="legacy"), rounds=3)
    return {
        "large_mesh_200_wall_seconds": fast["wall_seconds"],
        "large_mesh_200_sim_fps": fast["sim_fps"],
        "large_mesh_200_engine_speedup":
            legacy["wall_seconds"] / fast["wall_seconds"],
    }


def kilonode_benchmarks() -> dict[str, float]:
    """The ``kilonode`` preset: one capped MORE flow across 1000 nodes."""
    spec = get_preset("kilonode")
    topology = build_topology(spec.topology)
    source, destination = spec.workload.params["pairs"][0]
    config = spec.run_config(seed=spec.seeds[0])
    flow = _measure_flow(topology, "MORE", source, destination, config, rounds=3)
    return {
        "kilonode_wall_seconds": flow["wall_seconds"],
        "kilonode_sim_fps": flow["sim_fps"],
    }


def sweep_benchmarks() -> dict[str, float]:
    """Cells per second through the sweep orchestrator vs the PR 1 runner.

    The workload (:mod:`repro.experiments.orchestrator.bench`) is 16
    successive 8-cell sweeps — the many-small-sweeps shape where the PR 1
    runner forks a fresh pool per ``run_cells`` call while the orchestrator
    keeps one warm.  Three figures:

    * **cold**: ``shutdown_shared_pools()`` before each measured round, so
      the orchestrator pays its full 8-worker spin-up inside the timing —
      the honest like-for-like comparison, and the one the 1.5x floor in
      ``benchmarks/test_sweep_floor.py`` asserts;
    * **warm pool**: the same round with the pool already up — the
      steady-state ratio a long parameter study actually sees;
    * **warm replay**: the whole workload re-run against a populated
      content-addressed store — every cell must come back as a hit
      (``sweep_warm_replay_recomputed`` is committed so a silent cache
      miss shows up in review, not just in wall clock).
    """
    specs = bench_sweep_specs()

    def pr1_round() -> float:
        return timed(lambda: [run_cells(spec.expand(), workers=BENCH_WORKERS)
                              for spec in specs])

    def cold_round() -> float:
        shutdown_shared_pools()  # spin-up counts against the cold figure
        return timed(lambda: [run_sweep(spec, workers=BENCH_WORKERS,
                                        results_dir=None)
                              for spec in specs])

    def warm_round() -> float:
        # The shared pool is still up from the previous round.
        return timed(lambda: [run_sweep(spec, workers=BENCH_WORKERS,
                                        results_dir=None)
                              for spec in specs])

    pr1_s = best_of(pr1_round, rounds=3)
    cold_s = best_of(cold_round, rounds=3)
    warm_s = best_of(warm_round, rounds=3)

    recomputed = 0
    with tempfile.TemporaryDirectory() as tmp:
        results_dir = Path(tmp)
        for spec in specs:  # populate the store once, outside the timing
            run_sweep(spec, workers=BENCH_WORKERS, results_dir=results_dir)

        def replay_round() -> float:
            nonlocal recomputed
            replays: list = []
            elapsed = timed(lambda: replays.extend(
                run_sweep(spec, workers=BENCH_WORKERS, results_dir=results_dir)
                for spec in specs))
            recomputed = sum(result.computed_cells for result in replays)
            return elapsed

        replay_s = best_of(replay_round, rounds=3)
    shutdown_shared_pools()  # leave no idle daemons behind for later stages
    return {
        "sweep_cold_cells_per_s_pr1": BENCH_CELLS / pr1_s,
        "sweep_cold_cells_per_s": BENCH_CELLS / cold_s,
        "sweep_cold_speedup": pr1_s / cold_s,
        "sweep_warm_pool_speedup": pr1_s / warm_s,
        "sweep_warm_replay_seconds": replay_s,
        "sweep_warm_replay_recomputed": float(recomputed),
    }


def main(argv: list[str]) -> int:
    output = Path(argv[0]) if argv else DEFAULT_OUTPUT
    protocols = protocol_benchmarks()
    engine = engine_benchmarks()
    engine["more_end_to_end_speedup"] = (
        protocols["MORE/legacy-engine"]["wall_seconds"]
        / protocols["MORE"]["wall_seconds"])
    engine.update(scale_benchmarks())
    engine.update(kilonode_benchmarks())
    report = {
        "schema": "bench-baseline/v5",
        "config": {"batch_size": K, "packet_size": PACKET_SIZE, "rounds": ROUNDS,
                   "medium_nodes": MEDIUM_NODES, "medium_frames": MEDIUM_FRAMES,
                   "engine_events": BENCH_EVENTS,
                   "v3_decode_baseline_pps": V3_DECODE_BASELINE_PPS,
                   "v4_recode_baseline_pps": V4_RECODE_BASELINE_PPS,
                   "sweep_sweeps": BENCH_SWEEPS,
                   "sweep_seeds_per_sweep": BENCH_SEEDS_PER_SWEEP,
                   "sweep_workers": BENCH_WORKERS},
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "kernels_mbps": kernel_benchmarks(),
        "coding_pps": coding_benchmarks(),
        "decode_engines": decode_engine_benchmarks(),
        "medium_fps": medium_benchmarks(),
        "engine": engine,
        "sweep": sweep_benchmarks(),
        "protocols": protocols,
    }
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
