#!/usr/bin/env python3
"""docs-check: every ``repro.*`` dotted name in the docs must resolve.

Scans the given markdown files (default: README.md and docs/*.md) for
tokens like ``repro.metrics.etx.link_etx``, imports the longest importable
module prefix of each and resolves the remainder with ``getattr``.  Exits
non-zero listing every token that no longer matches the code, so renames
cannot silently rot the documentation.

Run via ``make docs-check`` (needs ``PYTHONPATH=src``).
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

TOKEN = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")

DEFAULT_FILES = ["README.md", "docs/paper-map.md", "docs/scenarios.md"]


def resolve(token: str) -> None:
    """Import/getattr ``token``; raises on any failure."""
    parts = token.split(".")
    last_error: Exception | None = None
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(module_name)
        except ImportError as error:
            last_error = error
            continue
        for attribute in parts[cut:]:
            obj = getattr(obj, attribute)  # AttributeError propagates
        return
    raise last_error if last_error else ImportError(token)


def main(argv: list[str]) -> int:
    files = [Path(name) for name in (argv or DEFAULT_FILES)]
    failures: list[tuple[Path, str, str]] = []
    checked: set[str] = set()
    for path in files:
        if not path.is_file():
            failures.append((path, "<file>", "file not found"))
            continue
        for token in sorted(set(TOKEN.findall(path.read_text(encoding="utf-8")))):
            try:
                resolve(token)
            except Exception as error:  # noqa: BLE001 - report every failure kind
                failures.append((path, token, f"{type(error).__name__}: {error}"))
            else:
                checked.add(token)
    if failures:
        print(f"docs-check: {len(failures)} unresolved reference(s):", file=sys.stderr)
        for path, token, reason in failures:
            print(f"  {path}: {token}  ({reason})", file=sys.stderr)
        return 1
    print(f"docs-check: {len(checked)} distinct repro.* references resolve "
          f"across {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
