#!/usr/bin/env python3
"""Profile one scenario-preset flow under cProfile and print the hot spots.

The quickest way to see where simulation wall-clock goes before and after a
perf change (see docs/performance.md):

    make profile                                        # fig_4_2 MORE
    PYTHONPATH=src python scripts/profile_run.py --preset fig_4_2 \
        --protocol MORE --engine legacy --top 30

One warm-up run happens outside the profiler (imports, table builds and
cache priming would otherwise dominate), then ``--runs`` profiled runs.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.runner import run_single_flow    # noqa: E402
from repro.scenarios import build_pairs, build_topology, get_preset  # noqa: E402
from repro.sim.radio import ENGINE_MODES  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="fig_4_2",
                        help="scenario preset supplying topology + workload "
                             "(default: fig_4_2)")
    parser.add_argument("--protocol", default="MORE",
                        choices=("MORE", "ExOR", "Srcr"))
    parser.add_argument("--engine", default="fast", choices=ENGINE_MODES,
                        help="hot-path selection (legacy = pre-refactor paths)")
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument("--runs", type=int, default=1,
                        help="profiled runs (after one unprofiled warm-up)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows of the cumulative-time table to print")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"))
    args = parser.parse_args(argv)

    spec = get_preset(args.preset)
    topology = build_topology(spec.topology)
    source, destination = build_pairs(spec.workload, topology, args.seed)[0]
    config = spec.run_config(args.seed)
    config.engine = args.engine

    def run() -> None:
        run_single_flow(topology, args.protocol, source, destination,
                        config=config)

    run()  # warm-up outside the profiler
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(args.runs):
        run()
    profiler.disable()

    print(f"# {args.preset} {args.protocol} {source}->{destination} "
          f"engine={args.engine} seed={args.seed} runs={args.runs}")
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
