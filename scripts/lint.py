#!/usr/bin/env python3
"""lint: run ruff when available, the repro.analysis style rules otherwise.

``make lint`` (folded into ``make check`` alongside tier-1 tests) must work
both on developer machines with ruff installed and inside hermetic
containers without it.  When ``ruff`` is importable or on PATH we defer to
``ruff check`` with the configuration in ``pyproject.toml``; otherwise the
style subset of the :mod:`repro.analysis` rule framework enforces the same
policy with the stdlib only:

* SYN001 — the file parses;
* E501 — lines longer than ``tool.ruff.line-length``;
* W291/W293 — trailing whitespace;
* W191 — tabs in indentation;
* F401 — imports never used in the module (``__init__.py`` re-export
  hubs, ``import x as x``, ``__all__``/string references and
  ``if TYPE_CHECKING:`` guards exempt).

The invariant rules (DET/ENG/CFG/PERF) run via ``make analyze``; this
script stays the style-only alias.  Exit status 0 when clean, 1 with one
line per violation otherwise.
"""

from __future__ import annotations

import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))  # in-tree package, no install

from repro.analysis import STYLE_RULES, AnalysisConfig, run_rules  # noqa: E402

TARGETS = list(AnalysisConfig().style_targets)
DEFAULT_LINE_LENGTH = 100


def _configured_line_length() -> int:
    text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    match = re.search(r"^line-length\s*=\s*(\d+)", text, re.MULTILINE)
    return int(match.group(1)) if match else DEFAULT_LINE_LENGTH


def _run_ruff() -> int | None:
    """Run ``ruff check`` if ruff exists; None when it is unavailable."""
    if shutil.which("ruff"):
        command = ["ruff", "check"]
    else:
        try:
            import ruff  # noqa: F401
        except ImportError:
            return None
        command = [sys.executable, "-m", "ruff", "check"]
    print(f"lint: ruff available, running: {' '.join(command)} {' '.join(TARGETS)}")
    return subprocess.run(command + TARGETS, cwd=REPO_ROOT).returncode


def _run_fallback() -> int:
    config = AnalysisConfig(line_length=_configured_line_length())
    print(f"lint: ruff not installed; repro.analysis style rules "
          f"({', '.join(STYLE_RULES)}) over {', '.join(TARGETS)} "
          f"(line length {config.line_length})")
    findings = run_rules(REPO_ROOT, config=config, select=STYLE_RULES)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"lint: {len(findings)} problem(s)")
        return 1
    print("lint: clean")
    return 0


def main() -> int:
    status = _run_ruff()
    if status is not None:
        return status
    return _run_fallback()


if __name__ == "__main__":
    sys.exit(main())
