#!/usr/bin/env python3
"""lint: run ruff when available, a stdlib fallback subset otherwise.

``make lint`` (folded into ``make check`` alongside tier-1 tests) must work
both on developer machines with ruff installed and inside hermetic
containers without it.  When ``ruff`` is importable or on PATH we defer to
``ruff check`` with the configuration in ``pyproject.toml``; otherwise a
conservative stdlib implementation enforces the subset of that policy that
can be checked without third-party code:

* the file parses (syntax errors);
* E501 — lines longer than ``tool.ruff.line-length``;
* W291/W293 — trailing whitespace;
* W191 — tabs in indentation;
* F401 — imports never used in the module (skipped for ``__init__.py``
  re-export hubs and names listed in ``__all__`` or redundantly aliased
  ``import x as x``).

Exit status 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import ast
import re
import shutil
import subprocess
import sys
import tokenize
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TARGETS = ["src", "tests", "benchmarks", "scripts", "examples", "setup.py"]
DEFAULT_LINE_LENGTH = 100


def _configured_line_length() -> int:
    text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    match = re.search(r"^line-length\s*=\s*(\d+)", text, re.MULTILINE)
    return int(match.group(1)) if match else DEFAULT_LINE_LENGTH


def _python_files() -> list[Path]:
    files: list[Path] = []
    for target in TARGETS:
        path = REPO_ROOT / target
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
    return files


def _run_ruff() -> int | None:
    """Run ``ruff check`` if ruff exists; None when it is unavailable."""
    if shutil.which("ruff"):
        command = ["ruff", "check"]
    else:
        try:
            import ruff  # noqa: F401
        except ImportError:
            return None
        command = [sys.executable, "-m", "ruff", "check"]
    print(f"lint: ruff available, running: {' '.join(command)} {' '.join(TARGETS)}")
    return subprocess.run(command + TARGETS, cwd=REPO_ROOT).returncode


# --------------------------------------------------------------------------- #
# Stdlib fallback checks
# --------------------------------------------------------------------------- #


class _ImportUsage(ast.NodeVisitor):
    """Collect imported top-level names and every name/attribute used."""

    def __init__(self) -> None:
        self.imported: dict[str, int] = {}
        self.used: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname == alias.name.split(".")[0]:
                continue  # `import x as x`: an explicit re-export idiom
            name = alias.asname or alias.name.split(".")[0]
            self.imported.setdefault(name, node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if alias.name == "*" or alias.asname == alias.name:
                continue
            name = alias.asname or alias.name
            self.imported.setdefault(name, node.lineno)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)


def _string_referenced(name: str, tree: ast.Module) -> bool:
    """True when ``name`` appears as a whole word in a string constant.

    Covers ``__all__`` entries and docstring/doctest references without the
    false negatives raw substring containment would produce (an unused
    ``np`` must not be excused by the word "input" appearing somewhere).
    """
    pattern = re.compile(rf"\b{re.escape(name)}\b")
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if pattern.search(node.value):
                return True
    return False


def _check_file(path: Path, line_length: int) -> list[str]:
    relative = path.relative_to(REPO_ROOT)
    problems: list[str] = []
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [f"{relative}:{error.lineno}: syntax error: {error.msg}"]

    for number, line in enumerate(source.splitlines(), start=1):
        if len(line) > line_length:
            problems.append(f"{relative}:{number}: E501 line too long "
                            f"({len(line)} > {line_length})")
        if line != line.rstrip():
            code = "W293" if not line.strip() else "W291"
            problems.append(f"{relative}:{number}: {code} trailing whitespace")
        stripped = line.lstrip(" ")
        if stripped.startswith("\t"):
            problems.append(f"{relative}:{number}: W191 tab in indentation")

    if path.name != "__init__.py":
        usage = _ImportUsage()
        usage.visit(tree)
        for name, lineno in sorted(usage.imported.items(), key=lambda kv: kv[1]):
            if name in usage.used or name == "annotations":
                continue
            if _string_referenced(name, tree):
                continue  # __all__ entries / doctest references
            problems.append(f"{relative}:{lineno}: F401 '{name}' imported "
                            "but unused")
    try:
        with tokenize.open(path):
            pass
    except (tokenize.TokenError, SyntaxError) as error:  # pragma: no cover
        problems.append(f"{relative}:1: tokenize error: {error}")
    return problems


def _run_fallback() -> int:
    line_length = _configured_line_length()
    files = _python_files()
    print(f"lint: ruff not installed; stdlib fallback over {len(files)} files "
          f"(line length {line_length})")
    problems: list[str] = []
    for path in files:
        problems.extend(_check_file(path, line_length))
    for problem in problems:
        print(problem)
    if problems:
        print(f"lint: {len(problems)} problem(s)")
        return 1
    print("lint: clean")
    return 0


def main() -> int:
    status = _run_ruff()
    if status is not None:
        return status
    return _run_fallback()


if __name__ == "__main__":
    sys.exit(main())
