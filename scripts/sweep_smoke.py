#!/usr/bin/env python3
"""sweep-smoke: kill-resume the sweep service through the real CLI.

The orchestrator's resume story is only honest end-to-end: a multi-worker
``python -m repro sweep`` SIGKILLed mid-flight must, on re-run, load the
surviving cells from the content-addressed store, compute only the
missing ones, and aggregate **bit-identically** to a sweep that was never
interrupted.  ``tests/scenarios/test_orchestrator.py`` asserts the same
contract under pytest; this script is the standalone gate ``make
sweep-smoke`` (and CI) runs against the installed tree:

1. start the sweep (8 cells, 4 workers) in a scratch directory;
2. SIGKILL it as soon as the first cell file lands;
3. re-run the identical command — it must report every survivor as a
   cache hit and finish the rest;
4. run the same sweep uninterrupted in a second scratch directory and
   compare the aggregated cells byte for byte.

Exit status 0 on success; any violated step raises.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SWEEP = [sys.executable, "-m", "repro", "sweep", "--preset", "chain_smoke",
         "--set", "run.total_packets=16", "--seeds", "1,2,3,4,5,6,7,8",
         "--workers", "4", "--json"]
CELLS = 8


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    return env


def _run(cwd: Path) -> dict:
    done = subprocess.run(SWEEP, cwd=cwd, env=_env(), capture_output=True,
                          text=True, timeout=600)
    if done.returncode != 0:
        raise RuntimeError(f"sweep failed:\n{done.stderr}")
    return json.loads(done.stdout)


def kill_mid_sweep(cwd: Path) -> int:
    """Start the sweep, SIGKILL once a cell lands, return survivor count."""
    store = cwd / "results" / "store" / "chain_smoke"
    process = subprocess.Popen(SWEEP, cwd=cwd, env=_env(),
                               stdout=subprocess.DEVNULL,
                               stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline:
            if store.is_dir() and list(store.glob("cell-*.json")):
                break
            if process.poll() is not None:
                break  # finished whole before the kill: still a valid resume
            time.sleep(0.01)
        if process.poll() is None:
            process.send_signal(signal.SIGKILL)
    finally:
        process.wait(timeout=60)
    return len(list(store.glob("cell-*.json")))


def main() -> int:
    with tempfile.TemporaryDirectory() as killed, \
            tempfile.TemporaryDirectory() as clean:
        survivors = kill_mid_sweep(Path(killed))
        print(f"sweep-smoke: killed mid-sweep, {survivors}/{CELLS} cells "
              "survived in the store")
        assert survivors >= 1, "nothing survived the kill window"

        resumed = _run(Path(killed))
        print(f"sweep-smoke: resume ran {resumed['computed_cells']} cells, "
              f"hit {resumed['cached_cells']} cached")
        assert resumed["cached_cells"] >= survivors
        assert resumed["cached_cells"] + resumed["computed_cells"] == CELLS

        reference = _run(Path(clean))
        assert reference["cells"] == resumed["cells"], \
            "resumed aggregate diverged from the uninterrupted run"
        print("sweep-smoke: resumed aggregate bit-identical to a clean run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
