#!/usr/bin/env python3
"""fault-smoke: fault injection and liveness monitoring through the real CLI.

The fault subsystem's headline contracts, asserted end-to-end against the
installed tree (``make fault-smoke``, and CI):

1. **structured aborts, not hangs** — killing every relay of the
   ``chain_smoke`` flow mid-batch with a finite ``run.progress_timeout``
   must exit 0 with every protocol's flow reported as aborted (the
   ``*_aborted`` summary counters and ``meta.aborted_flows`` notes);
2. **stalls are loud** — the same kill with the monitor armed and no
   progress timeout must exit nonzero with a one-screen ``stall
   diagnosis`` naming the down nodes on stderr, within seconds;
3. **fault determinism** — the ``crash_recover_sweep`` preset aggregated
   with 1 worker equals the 2-worker run byte for byte.

Exit status 0 on success; any violated step raises.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Both relays of the chain_smoke 3-hop chain die at t=0.01 and stay down.
_KILL_RELAYS = '{"1": [[0.01, 1e9]], "2": [[0.01, 1e9]]}'


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    return env


def _repro(args: list[str], cwd: Path) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, "-m", "repro", *args], cwd=cwd,
                          env=_env(), capture_output=True, text=True,
                          timeout=600)


def check_structured_aborts(cwd: Path) -> None:
    done = _repro(["run", "--preset", "chain_smoke", "--no-cache", "--json",
                   "--faults", "scheduled",
                   "--set", f"faults.downs={_KILL_RELAYS}",
                   "--set", "run.refresh_period=0.5",
                   "--set", "run.progress_timeout=0.5"], cwd)
    if done.returncode != 0:
        raise RuntimeError(f"faulted run failed instead of aborting "
                           f"gracefully:\n{done.stderr}")
    (result,) = json.loads(done.stdout)["cells"]
    for protocol in ("MORE", "ExOR", "Srcr"):
        count = result["summary"].get(f"{protocol}_aborted")
        if count != 1.0:
            raise RuntimeError(f"{protocol}: expected 1 aborted flow, "
                               f"summary says {count!r}")
        (note,) = result["meta"]["aborted_flows"][protocol]
        if "no progress" not in note or "down nodes [1, 2]" not in note:
            raise RuntimeError(f"{protocol}: abort note lacks forensics: "
                               f"{note!r}")
    print("fault-smoke: all-relays-crashed run aborted all 3 protocols "
          "with structured reasons")


def check_monitor_raises(cwd: Path) -> None:
    done = _repro(["run", "--preset", "chain_smoke", "--no-cache",
                   "--faults", "scheduled", "--monitor",
                   "--set", f"faults.downs={_KILL_RELAYS}"], cwd)
    if done.returncode == 0:
        raise RuntimeError("monitored stranded run exited 0 — the stall "
                           "went unnoticed")
    if "stall diagnosis" not in done.stderr \
            or "down nodes: [1, 2]" not in done.stderr:
        raise RuntimeError(f"stderr lacks the one-screen diagnosis:\n"
                           f"{done.stderr[-2000:]}")
    print("fault-smoke: monitored stranded run raised a stall diagnosis "
          "naming the down nodes")


def check_sweep_determinism(serial_dir: Path, parallel_dir: Path) -> None:
    runs = {}
    for workers, cwd in (("1", serial_dir), ("2", parallel_dir)):
        done = _repro(["sweep", "--preset", "crash_recover_sweep",
                       "--no-cache", "--json", "--workers", workers], cwd)
        if done.returncode != 0:
            raise RuntimeError(f"crash_recover_sweep with {workers} "
                               f"worker(s) failed:\n{done.stderr}")
        runs[workers] = json.loads(done.stdout)["cells"]
    if runs["1"] != runs["2"]:
        raise RuntimeError("crash_recover_sweep diverged between 1 and 2 "
                           "workers — fault injection broke determinism")
    print("fault-smoke: crash_recover_sweep parallel == serial, "
          f"{len(runs['1'])} cells byte-identical")


def main() -> int:
    with tempfile.TemporaryDirectory() as a, \
            tempfile.TemporaryDirectory() as b:
        check_structured_aborts(Path(a))
        check_monitor_raises(Path(a))
        check_sweep_determinism(Path(a), Path(b))
    return 0


if __name__ == "__main__":
    sys.exit(main())
